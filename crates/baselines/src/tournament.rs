//! The tournament-tree test-and-set baseline (AGTV92).
//!
//! Processors are assigned to the leaves of a complete binary tree over
//! `bracket_size(n)` slots. Each internal node hosts a two-contender match:
//! the winner of the left subtree plays the winner of the right subtree, and
//! the winner of the root wins the test-and-set. Every match is itself a
//! small leader election over that node's registers (doorway + round filter +
//! sifting), i.e. exactly the machinery a message-passing implementation of
//! AGTV92 obtains by simulating its shared-memory two-processor test-and-set
//! objects with ABD quorum registers.
//!
//! The point of the baseline is its *depth*: a winner must complete one match
//! per level, so its time complexity is Θ(log n) communicate calls, and —
//! because the bracket is fixed over `n` slots rather than the `k`
//! participants — even a lone participant pays the full Θ(log n), in contrast
//! with the adaptive O(log\* k) of the paper's algorithm.

use fle_core::leader_election::{ElectionConfig, LeaderElection};
use fle_model::{Action, ElectionContext, LocalStateView, Outcome, ProcId, Protocol, Response};

/// The number of leaves of the tournament bracket: the smallest power of two
/// that is at least `n` (and at least 2, so there is always a root match).
pub fn bracket_size(n: usize) -> usize {
    n.max(2).next_power_of_two()
}

/// Configuration of the tournament baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Number of processors in the system (determines the bracket).
    pub n: usize,
}

impl TournamentConfig {
    /// A tournament bracket over `n` processors.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a tournament needs at least one processor");
        TournamentConfig { n }
    }

    /// Number of levels a winner must ascend (the tree depth).
    pub fn depth(&self) -> u32 {
        bracket_size(self.n).trailing_zeros()
    }
}

#[derive(Debug)]
enum Stage {
    Init,
    /// Playing the match at the given heap-indexed internal node.
    Playing {
        node: u32,
        match_protocol: Box<LeaderElection>,
    },
    Done(Outcome),
}

/// The tournament-tree test-and-set of AGTV92.
///
/// Returns [`Outcome::Win`] for exactly one participant and [`Outcome::Lose`]
/// for every other participant that completes.
#[derive(Debug)]
pub struct TournamentTas {
    me: ProcId,
    config: TournamentConfig,
    stage: Stage,
    matches_played: u32,
}

impl TournamentTas {
    /// A tournament participant.
    pub fn new(me: ProcId, config: TournamentConfig) -> Self {
        TournamentTas {
            me,
            config,
            stage: Stage::Init,
            matches_played: 0,
        }
    }

    /// Number of matches this participant has entered so far.
    pub fn matches_played(&self) -> u32 {
        self.matches_played
    }

    /// Heap index of the leaf assigned to this processor.
    fn leaf(&self) -> u32 {
        (bracket_size(self.config.n) + self.me.index()) as u32
    }

    /// The match protocol played at `node`: a two-contender leader election
    /// over registers scoped to that node.
    fn match_at(&mut self, node: u32) -> Box<LeaderElection> {
        self.matches_played += 1;
        Box::new(LeaderElection::with_config(
            self.me,
            ElectionConfig {
                ctx: ElectionContext::Scoped(node),
                ..ElectionConfig::default()
            },
        ))
    }

    /// Enter the match at the parent of `child`, or finish with a win at the
    /// root. Returns the first action of the new match (or the final return).
    fn ascend_from(&mut self, child: u32) -> Action {
        if child <= 1 {
            self.stage = Stage::Done(Outcome::Win);
            return Action::Return(Outcome::Win);
        }
        let node = child / 2;
        let mut match_protocol = self.match_at(node);
        let first_action = match_protocol.step(Response::Start);
        // A lone contender still performs the match's communicate calls (the
        // doorway and round filter), which is what makes the baseline pay
        // Θ(log n) even at low contention.
        match first_action {
            Action::Return(outcome) => self.conclude_match(node, outcome),
            other => {
                self.stage = Stage::Playing {
                    node,
                    match_protocol,
                };
                other
            }
        }
    }

    fn conclude_match(&mut self, node: u32, outcome: Outcome) -> Action {
        match outcome {
            Outcome::Win => self.ascend_from(node),
            _ => {
                self.stage = Stage::Done(Outcome::Lose);
                Action::Return(Outcome::Lose)
            }
        }
    }
}

impl Protocol for TournamentTas {
    fn step(&mut self, response: Response) -> Action {
        match &mut self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                let leaf = self.leaf();
                self.ascend_from(leaf)
            }
            Stage::Playing {
                node,
                match_protocol,
            } => {
                let node = *node;
                let action = match_protocol.step(response);
                match action {
                    Action::Return(outcome) => self.conclude_match(node, outcome),
                    other => other,
                }
            }
            Stage::Done(outcome) => Action::Return(*outcome),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let (phase, coin, node) = match &self.stage {
            Stage::Init => ("init", None, 0),
            Stage::Playing {
                node,
                match_protocol,
            } => ("playing", match_protocol.adversary_view().coin, *node),
            Stage::Done(_) => ("done", None, 0),
        };
        LocalStateView {
            algorithm: "tournament-tas",
            phase,
            round: u64::from(self.matches_played),
            coin,
            details: vec![("node", i64::from(node))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_core::checks;
    use fle_sim::{Adversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator};

    fn run_tournament(
        n: usize,
        k: usize,
        seed: u64,
        adversary: &mut dyn Adversary,
    ) -> fle_sim::ExecutionReport {
        let config = TournamentConfig::new(n);
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..k {
            sim.add_participant(ProcId(i), Box::new(TournamentTas::new(ProcId(i), config)));
        }
        sim.run(adversary).expect("tournament terminates")
    }

    #[test]
    fn bracket_sizes_are_powers_of_two() {
        assert_eq!(bracket_size(1), 2);
        assert_eq!(bracket_size(2), 2);
        assert_eq!(bracket_size(3), 4);
        assert_eq!(bracket_size(8), 8);
        assert_eq!(bracket_size(9), 16);
        assert_eq!(TournamentConfig::new(9).depth(), 4);
        assert_eq!(TournamentConfig::new(2).depth(), 1);
    }

    #[test]
    fn exactly_one_winner() {
        for (n, k) in [(2usize, 2usize), (4, 4), (8, 5), (8, 8)] {
            for seed in 0..3u64 {
                let adversaries: Vec<Box<dyn Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                ];
                for mut adversary in adversaries {
                    let report = run_tournament(n, k, seed, adversary.as_mut());
                    assert!(checks::unique_winner(&report), "n={n} k={k} seed={seed}");
                    assert!(
                        checks::someone_won(&report),
                        "n={n} k={k} seed={seed} adversary={}",
                        adversary.name()
                    );
                    assert_eq!(report.outcomes.len(), k);
                }
            }
        }
    }

    #[test]
    fn lone_participant_still_pays_the_full_depth() {
        let n = 16;
        let report = run_tournament(n, 1, 0, &mut RandomAdversary::with_seed(1));
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        // One match per level, each match costs at least 4 communicate calls
        // (doorway collect+propagate, round propagate+collect).
        let depth = TournamentConfig::new(n).depth() as u64;
        assert!(
            report.max_communicate_calls() >= 4 * depth,
            "the tournament is not adaptive: expected ≥ {} calls, got {}",
            4 * depth,
            report.max_communicate_calls()
        );
    }

    #[test]
    fn time_grows_with_the_bracket_depth() {
        // The winner's communicate-call count must grow noticeably from n=4
        // to n=32 (Θ(log n)), in contrast with the paper's algorithm.
        let calls_for = |n: usize| {
            let report = run_tournament(n, n, 7, &mut RandomAdversary::with_seed(11));
            report.max_communicate_calls()
        };
        let small = calls_for(4);
        let large = calls_for(32);
        assert!(
            large > small,
            "expected more communicate calls at depth 5 ({large}) than depth 2 ({small})"
        );
    }

    #[test]
    fn adversary_view_reports_the_current_node() {
        let config = TournamentConfig::new(4);
        let tas = TournamentTas::new(ProcId(3), config);
        let view = tas.adversary_view();
        assert_eq!(view.algorithm, "tournament-tas");
        assert_eq!(view.phase, "init");
        assert_eq!(tas.matches_played(), 0);
    }
}
