//! Actions emitted by protocols and responses fed back by the backends.

use crate::ids::InstanceId;
use crate::value::{Key, Value};
use crate::view::CollectedViews;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The final answer of a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Leader election: the caller is the unique winner.
    Win,
    /// Leader election: the caller lost.
    Lose,
    /// A sifting phase: the caller stays in contention.
    Survive,
    /// A sifting phase: the caller drops out.
    Die,
    /// A sub-procedure finished without deciding (e.g. `PreRound` returning
    /// `PROCEED`).
    Proceed,
    /// Renaming: the caller acquired this name (1-based, as in the paper).
    Name(usize),
}

impl Outcome {
    /// Whether the outcome ends a leader election with a win.
    pub fn is_win(self) -> bool {
        self == Outcome::Win
    }

    /// Whether the outcome keeps the caller in contention after a sift.
    pub fn is_survive(self) -> bool {
        self == Outcome::Survive
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Win => write!(f, "WIN"),
            Outcome::Lose => write!(f, "LOSE"),
            Outcome::Survive => write!(f, "SURVIVE"),
            Outcome::Die => write!(f, "DIE"),
            Outcome::Proceed => write!(f, "PROCEED"),
            Outcome::Name(u) => write!(f, "NAME({u})"),
        }
    }
}

/// An effect a protocol asks its backend to perform.
///
/// Exactly one [`Response`] is produced for every action other than
/// [`Action::Return`], and the backend feeds it to the next
/// [`Protocol::step`](crate::Protocol::step) call of the same processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// `communicate(propagate, ·)`: broadcast the register writes to every
    /// processor and wait for acknowledgements from a quorum (> n/2).
    Propagate {
        /// The register writes carried by the broadcast. All entries travel
        /// in a single message (one communicate call), matching the paper's
        /// accounting of one message per recipient per call.
        entries: Vec<(Key, Value)>,
    },
    /// `communicate(collect, instance)`: ask every processor for its view of
    /// `instance` and wait for the views of a quorum (> n/2).
    Collect {
        /// The register array whose views are requested.
        instance: InstanceId,
    },
    /// Flip a biased coin. The outcome is local but — against the strong
    /// adaptive adversary — immediately visible to the scheduler.
    Flip {
        /// Probability of flipping 1.
        prob_one: f64,
    },
    /// Pick uniformly at random among `choices` (the renaming algorithm's
    /// random free-name pick, Figure 3 line 38). Also adversary-visible.
    Choose {
        /// Non-empty list of candidate values.
        choices: Vec<u64>,
    },
    /// Terminate with the given outcome.
    Return(Outcome),
}

impl Action {
    /// Whether this action ends the protocol.
    pub fn is_return(&self) -> bool {
        matches!(self, Action::Return(_))
    }

    /// The outcome if this is a return action.
    pub fn outcome(&self) -> Option<Outcome> {
        match self {
            Action::Return(o) => Some(*o),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Propagate { entries } => write!(f, "propagate({} entries)", entries.len()),
            Action::Collect { instance } => write!(f, "collect({instance})"),
            Action::Flip { prob_one } => write!(f, "flip(p={prob_one:.4})"),
            Action::Choose { choices } => write!(f, "choose(|{}|)", choices.len()),
            Action::Return(o) => write!(f, "return({o})"),
        }
    }
}

/// The backend's answer to the previous [`Action`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// First activation of the protocol; there is no previous action.
    Start,
    /// A `Propagate` action completed: a quorum acknowledged.
    AckQuorum,
    /// A `Collect` action completed with the views of a quorum.
    Views(CollectedViews),
    /// The result of a `Flip` action.
    Coin(bool),
    /// The result of a `Choose` action.
    Chosen(u64),
}

impl Response {
    /// The collected views, panicking if the response is of a different kind.
    ///
    /// # Panics
    /// Panics when the response does not carry views; protocols use this only
    /// immediately after issuing a `Collect`, where any other response is a
    /// backend bug.
    pub fn expect_views(self) -> CollectedViews {
        match self {
            Response::Views(v) => v,
            other => panic!("protocol expected collected views, backend sent {other:?}"),
        }
    }

    /// The coin flip, panicking if the response is of a different kind.
    ///
    /// # Panics
    /// Panics when the response does not carry a coin flip.
    pub fn expect_coin(self) -> bool {
        match self {
            Response::Coin(c) => c,
            other => panic!("protocol expected a coin flip, backend sent {other:?}"),
        }
    }

    /// The chosen value, panicking if the response is of a different kind.
    ///
    /// # Panics
    /// Panics when the response does not carry a choice.
    pub fn expect_chosen(self) -> u64 {
        match self {
            Response::Chosen(c) => c,
            other => panic!("protocol expected a random choice, backend sent {other:?}"),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Start => write!(f, "start"),
            Response::AckQuorum => write!(f, "ack-quorum"),
            Response::Views(v) => write!(f, "views({} responders)", v.len()),
            Response::Coin(c) => write!(f, "coin({})", u8::from(*c)),
            Response::Chosen(c) => write!(f, "chosen({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElectionContext, ProcId};
    use crate::value::Status;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Win.is_win());
        assert!(!Outcome::Lose.is_win());
        assert!(Outcome::Survive.is_survive());
        assert!(!Outcome::Die.is_survive());
        assert_eq!(Outcome::Name(3).to_string(), "NAME(3)");
    }

    #[test]
    fn action_return_accessors() {
        let a = Action::Return(Outcome::Lose);
        assert!(a.is_return());
        assert_eq!(a.outcome(), Some(Outcome::Lose));
        let b = Action::Collect {
            instance: InstanceId::round(ElectionContext::Standalone),
        };
        assert!(!b.is_return());
        assert_eq!(b.outcome(), None);
    }

    #[test]
    fn response_expect_helpers() {
        assert!(Response::Coin(true).expect_coin());
        assert_eq!(Response::Chosen(42).expect_chosen(), 42);
        assert!(Response::Views(CollectedViews::default())
            .expect_views()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "expected a coin flip")]
    fn response_expect_coin_panics_on_mismatch() {
        let _ = Response::AckQuorum.expect_coin();
    }

    #[test]
    fn action_display_summarises() {
        let a = Action::Propagate {
            entries: vec![(
                Key::proc(
                    InstanceId::status(ElectionContext::Standalone, 1),
                    ProcId(0),
                ),
                Value::Status(Status::Commit),
            )],
        };
        assert_eq!(a.to_string(), "propagate(1 entries)");
    }
}
