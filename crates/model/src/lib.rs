//! Shared protocol model for the `fast-leader-election` workspace.
//!
//! This crate defines the vocabulary that every other crate speaks:
//!
//! * [`ProcId`] — processor identifiers in the asynchronous message-passing
//!   model of Attiya, Bar-Noy and Dolev (ABND95) that the paper builds on,
//! * [`Value`] and [`Key`] — the replicated registers that the
//!   `communicate(propagate / collect)` primitive reads and writes,
//! * [`Protocol`] — the state-machine interface every algorithm
//!   (PoisonPill, Heterogeneous PoisonPill, the full leader election, the
//!   renaming algorithm, and the tournament baselines) is written against,
//! * [`SharedMemory`] — the protocol ⇄ memory contract
//!   (`propagate`/`collect`/`flip`/`choose`) that every synchronous execution
//!   backend implements, with [`drive`] as the shared protocol driver and
//!   [`DriveMachine`] as its resumable inside-out form (one suspended
//!   participant = one machine, not one blocked thread),
//! * [`ScheduledMemory`] — the schedule-gate extension of that contract:
//!   backends that announce each operation as a [`SchedulePoint`] and block
//!   until granted become adversarially schedulable (and hence replayable)
//!   even when their concurrency comes from real threads; [`drive_scheduled`]
//!   is the gated driver,
//! * [`wire`] — the wire messages exchanged by the backends,
//! * [`metrics`] — the complexity accounting shared by the simulator and the
//!   threaded runtime (message complexity, communicate-call counts).
//!
//! Algorithms written against this crate run unmodified on the deterministic
//! adversarial simulator (`fle-sim`) and on the real-thread runtime
//! (`fle-runtime`).
//!
//! # Example
//!
//! A trivial protocol that propagates a flag and then returns:
//!
//! ```
//! use fle_model::{Action, Key, Outcome, Protocol, Response, Slot, Value};
//! use fle_model::{InstanceId, LocalStateView};
//!
//! struct Announce {
//!     me: fle_model::ProcId,
//!     done: bool,
//! }
//!
//! impl Protocol for Announce {
//!     fn step(&mut self, response: Response) -> Action {
//!         match response {
//!             Response::Start => Action::Propagate {
//!                 entries: vec![(
//!                     Key::new(InstanceId::custom(0, 0), Slot::Proc(self.me)),
//!                     Value::Flag(true),
//!                 )],
//!             },
//!             _ => {
//!                 self.done = true;
//!                 Action::Return(Outcome::Proceed)
//!             }
//!         }
//!     }
//!
//!     fn adversary_view(&self) -> LocalStateView {
//!         LocalStateView::new("announce", if self.done { "done" } else { "running" })
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod backend;
pub mod ids;
pub mod metrics;
pub mod partition;
pub mod protocol;
pub mod schedule;
pub mod store;
pub mod value;
pub mod view;
pub mod wire;

pub use action::{Action, Outcome, Response};
pub use backend::{
    drive, drive_cancellable, CancelToken, DriveMachine, DriveStep, Op, SharedMemory,
};
pub use ids::{splitmix64, ElectionContext, InstanceId, ProcId, Slot};
pub use metrics::{ExecutionMetrics, ProcessMetrics};
pub use partition::{PartitionMap, RouteKey};
pub use protocol::{LocalStateView, Protocol};
pub use schedule::{drive_scheduled, GateVerdict, SchedulePoint, ScheduledMemory};
pub use store::{CollectCache, ReplicaStore};
pub use value::{Key, Priority, ProcSet, Status, Value};
pub use view::{BitRow, CollectedViews, View};
pub use wire::{ViewTransfer, WireMessage};
