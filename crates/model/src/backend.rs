//! The protocol ⇄ shared-memory contract.
//!
//! The paper states its algorithms against asynchronous shared memory: a
//! processor *propagates* register writes and *collects* register views, and
//! everything else is local computation and coin flips. [`SharedMemory`] is
//! that contract made explicit — one processor's synchronous handle onto the
//! replicated registers plus its local randomness — so a protocol written as
//! a [`Protocol`] state machine runs unmodified on any implementation:
//!
//! * the deterministic **simulator adapter** (`fle_sim::SimMemory`), registers
//!   as plain [`crate::ReplicaStore`]s driven sequentially,
//! * the **threaded message-passing runtime** (`fle_runtime`), registers
//!   emulated by quorum `communicate(propagate / collect)` traffic over real
//!   channels (ABND95),
//! * the **in-process concurrent backend** (`fle_runtime::SharedRegisters`),
//!   registers as real shared state behind sharded locks, where contention
//!   comes from the hardware rather than from emulated quorums.
//!
//! [`drive`] is the one loop every synchronous backend shares: feed the
//! protocol the response to its previous action until it returns.
//!
//! The discrete-event simulator (`fle_sim::Simulator`) implements the same
//! contract in *inverted* form — actions become scheduled events and the
//! adversary chooses when each completes — which is why it keeps its own
//! engine instead of implementing this trait directly.

use crate::action::{Action, Outcome, Response};
use crate::ids::InstanceId;
use crate::protocol::Protocol;
use crate::value::{Key, Value};
use crate::view::CollectedViews;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One processor's synchronous handle onto the replicated shared memory.
///
/// The four methods mirror the four non-returning [`Action`]s. A call to
/// [`SharedMemory::propagate`] returns once the written entries are durable
/// (in a quorum-based implementation: once a quorum acknowledged; in a true
/// shared memory: immediately after the write). [`SharedMemory::collect`]
/// returns the register views of `instance` that the caller is entitled to
/// read — one view per responding replica, or a single atomic snapshot when
/// the registers are genuinely shared.
pub trait SharedMemory {
    /// `communicate(propagate, entries)`: merge the register writes into the
    /// shared memory; returns once they are durable.
    fn propagate(&mut self, entries: Vec<(Key, Value)>);

    /// `communicate(collect, instance)`: the current views of `instance`.
    fn collect(&mut self, instance: InstanceId) -> CollectedViews;

    /// Flip a biased coin (probability `prob_one` of returning `true`).
    fn flip(&mut self, prob_one: f64) -> bool;

    /// Pick uniformly at random among `choices`; implementations return `0`
    /// for an empty slice (protocols never ask, this is a safeguard).
    fn choose(&mut self, choices: &[u64]) -> u64;

    /// Perform one non-returning action and produce the protocol's next
    /// response; `None` exactly when the action is [`Action::Return`].
    fn perform(&mut self, action: Action) -> Option<Response> {
        match action {
            Action::Propagate { entries } => {
                self.propagate(entries);
                Some(Response::AckQuorum)
            }
            Action::Collect { instance } => Some(Response::Views(self.collect(instance))),
            Action::Flip { prob_one } => Some(Response::Coin(self.flip(prob_one))),
            Action::Choose { choices } => Some(Response::Chosen(self.choose(&choices))),
            Action::Return(_) => None,
        }
    }
}

impl<M: SharedMemory + ?Sized> SharedMemory for &mut M {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        (**self).propagate(entries);
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        (**self).collect(instance)
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        (**self).flip(prob_one)
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        (**self).choose(choices)
    }
}

/// One shared-memory operation a protocol needs performed before it can take
/// its next step — an [`Action`] with the terminal [`Action::Return`] arm
/// split off (that arm is [`DriveStep::Done`] instead).
///
/// An `Op` is the unit of suspension for resumable drivers: a
/// [`DriveMachine`] hands one out, the caller performs it against whatever
/// [`SharedMemory`] it owns (possibly much later, on a different thread),
/// and feeds the [`Response`] back via [`DriveMachine::resume`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Merge register writes into the shared memory.
    Propagate {
        /// The register writes to merge.
        entries: Vec<(Key, Value)>,
    },
    /// Read the current register views of an instance.
    Collect {
        /// The instance whose registers to read.
        instance: InstanceId,
    },
    /// Flip a biased coin.
    Flip {
        /// Probability of the coin coming up `true`.
        prob_one: f64,
    },
    /// Pick uniformly at random among explicit choices.
    Choose {
        /// The candidate values.
        choices: Vec<u64>,
    },
}

impl Op {
    /// Perform this operation against `memory` and produce the response the
    /// suspended protocol is waiting for.
    ///
    /// This is the resumable twin of [`SharedMemory::perform`]: same mapping,
    /// but total — an `Op` has no `Return` arm, so there is always a
    /// response.
    pub fn perform<M: SharedMemory + ?Sized>(self, memory: &mut M) -> Response {
        match self {
            Op::Propagate { entries } => {
                memory.propagate(entries);
                Response::AckQuorum
            }
            Op::Collect { instance } => Response::Views(memory.collect(instance)),
            Op::Flip { prob_one } => Response::Coin(memory.flip(prob_one)),
            Op::Choose { choices } => Response::Chosen(memory.choose(&choices)),
        }
    }

    /// The schedule point at which this operation executes — the gate an
    /// adversarial controller interposes on (see [`crate::SchedulePoint`]).
    pub fn point(&self) -> crate::schedule::SchedulePoint {
        use crate::schedule::SchedulePoint;
        match self {
            Op::Propagate { .. } => SchedulePoint::Propagate,
            Op::Collect { .. } => SchedulePoint::Collect,
            Op::Flip { .. } => SchedulePoint::Flip,
            Op::Choose { .. } => SchedulePoint::Choose,
        }
    }
}

/// What a [`DriveMachine`] produced from one protocol step.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveStep {
    /// The protocol needs this operation performed; feed the response back
    /// with [`DriveMachine::resume`] before stepping again.
    NeedOp(Op),
    /// The protocol returned: this participant is finished.
    Done(Outcome),
}

/// The [`drive`] loop turned inside out: an explicit resumable state machine
/// that never blocks and never touches the shared memory itself.
///
/// Where [`drive`] owns the loop — step the protocol, perform the action,
/// repeat until `Return` — a `DriveMachine` exposes each iteration to the
/// caller: [`DriveMachine::step`] advances the protocol exactly one step and
/// either finishes ([`DriveStep::Done`]) or suspends with the operation it
/// needs ([`DriveStep::NeedOp`]). The caller performs the [`Op`] whenever and
/// wherever it likes and re-arms the machine with [`DriveMachine::resume`].
/// This is what lets a cooperative executor multiplex thousands of
/// participants over a handful of OS threads: a parked participant is just a
/// `DriveMachine` plus its protocol, not a blocked thread.
///
/// The blocking drivers ([`drive`], [`drive_cancellable`],
/// [`crate::drive_scheduled`]) are thin wrappers over this machine and are
/// pinned byte-identical to the original loops by differential tests.
#[derive(Debug)]
pub struct DriveMachine {
    /// The response the next protocol step consumes; `None` while an [`Op`]
    /// is outstanding.
    pending: Option<Response>,
}

impl DriveMachine {
    /// A fresh machine, ready to take the protocol's first step.
    pub fn new() -> Self {
        DriveMachine {
            pending: Some(Response::Start),
        }
    }

    /// Whether the machine can step right now (no operation outstanding).
    pub fn is_runnable(&self) -> bool {
        self.pending.is_some()
    }

    /// Advance `protocol` by exactly one step.
    ///
    /// # Panics
    ///
    /// Panics if an [`Op`] handed out by a previous `step` has not been
    /// answered via [`DriveMachine::resume`] — stepping a suspended machine
    /// is a driver bug, not a recoverable condition.
    pub fn step<P: Protocol + ?Sized>(&mut self, protocol: &mut P) -> DriveStep {
        let response = self
            .pending
            .take()
            .expect("resume() the pending Op before stepping again");
        match protocol.step(response) {
            Action::Return(outcome) => DriveStep::Done(outcome),
            Action::Propagate { entries } => DriveStep::NeedOp(Op::Propagate { entries }),
            Action::Collect { instance } => DriveStep::NeedOp(Op::Collect { instance }),
            Action::Flip { prob_one } => DriveStep::NeedOp(Op::Flip { prob_one }),
            Action::Choose { choices } => DriveStep::NeedOp(Op::Choose { choices }),
        }
    }

    /// Feed back the response to the outstanding [`Op`], re-arming the
    /// machine for its next [`DriveMachine::step`].
    ///
    /// # Panics
    ///
    /// Panics if no operation is outstanding (double-resume).
    pub fn resume(&mut self, response: Response) {
        assert!(
            self.pending.is_none(),
            "resume() with no Op outstanding (double-resume)"
        );
        self.pending = Some(response);
    }
}

impl Default for DriveMachine {
    fn default() -> Self {
        DriveMachine::new()
    }
}

/// Drive `protocol` to completion against `memory`: the single loop shared by
/// every synchronous backend. A thin wrapper over [`DriveMachine`].
pub fn drive<P, M>(protocol: &mut P, mut memory: M) -> Outcome
where
    P: Protocol + ?Sized,
    M: SharedMemory,
{
    let mut machine = DriveMachine::new();
    loop {
        match machine.step(protocol) {
            DriveStep::Done(outcome) => return outcome,
            DriveStep::NeedOp(op) => {
                let response = op.perform(&mut memory);
                machine.resume(response);
            }
        }
    }
}

/// A cooperative cancellation signal threaded through backends.
///
/// A token is either *inert* ([`CancelToken::none`], the default: never
/// cancels, checks compile to a no-op branch) or *armed*
/// ([`CancelToken::new`]): it trips when [`CancelToken::cancel`] is called on
/// any clone, or — if [`CancelToken::with_deadline`] attached one — when the
/// deadline passes. Backends poll [`CancelToken::is_cancelled`] at operation
/// boundaries; a protocol step in progress always finishes, so cancellation
/// never tears a shared-memory operation in half.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// An armed token that cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// The inert token: never cancellable, zero polling cost.
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// Attach an absolute deadline; the token reports cancelled once the
    /// deadline has passed, even if nobody called [`CancelToken::cancel`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether this token can ever report cancelled (armed flag or deadline).
    pub fn is_cancellable(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some()
    }

    /// Trip the token: every clone observes the cancellation. A no-op on an
    /// inert token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been tripped or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Acquire) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

/// [`drive`], but polling `cancel` before every protocol step.
///
/// Returns `None` when the token trips mid-run; the shared memory is left in
/// whatever state the completed prefix of operations produced (callers that
/// namespace their registers should retire the namespace).
pub fn drive_cancellable<P, M>(
    protocol: &mut P,
    mut memory: M,
    cancel: &CancelToken,
) -> Option<Outcome>
where
    P: Protocol + ?Sized,
    M: SharedMemory,
{
    let mut machine = DriveMachine::new();
    loop {
        if cancel.is_cancelled() {
            return None;
        }
        match machine.step(protocol) {
            DriveStep::Done(outcome) => return Some(outcome),
            DriveStep::NeedOp(op) => {
                let response = op.perform(&mut memory);
                machine.resume(response);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElectionContext, ProcId, Slot};
    use crate::protocol::LocalStateView;
    use crate::store::ReplicaStore;

    /// A single-replica shared memory with a scripted coin, for unit tests.
    struct TestMemory {
        store: ReplicaStore,
        coins: Vec<bool>,
        calls: Vec<&'static str>,
    }

    impl TestMemory {
        fn new(coins: Vec<bool>) -> Self {
            TestMemory {
                store: ReplicaStore::new(),
                coins,
                calls: Vec::new(),
            }
        }
    }

    impl SharedMemory for TestMemory {
        fn propagate(&mut self, entries: Vec<(Key, Value)>) {
            self.calls.push("propagate");
            self.store.apply_all(&entries);
        }

        fn collect(&mut self, instance: InstanceId) -> CollectedViews {
            self.calls.push("collect");
            CollectedViews::from_shared(vec![(ProcId(0), self.store.view_arc(instance))])
        }

        fn flip(&mut self, _prob_one: f64) -> bool {
            self.calls.push("flip");
            self.coins.pop().unwrap_or(false)
        }

        fn choose(&mut self, choices: &[u64]) -> u64 {
            self.calls.push("choose");
            choices.first().copied().unwrap_or(0)
        }
    }

    /// Propagates a flag, collects it back, flips, and wins iff the flag is
    /// visible and the coin came up true.
    struct RoundTrip {
        stage: u8,
        saw_flag: bool,
    }

    impl Protocol for RoundTrip {
        fn step(&mut self, response: Response) -> Action {
            let instance = InstanceId::door(ElectionContext::Standalone);
            match self.stage {
                0 => {
                    self.stage = 1;
                    Action::Propagate {
                        entries: vec![(Key::global(instance), Value::Flag(true))],
                    }
                }
                1 => {
                    self.stage = 2;
                    Action::Collect { instance }
                }
                2 => {
                    let views = response.expect_views();
                    self.saw_flag = views.responses().iter().any(|(_, view)| {
                        view.get(&Slot::Global).and_then(Value::as_flag) == Some(true)
                    });
                    self.stage = 3;
                    Action::Flip { prob_one: 0.5 }
                }
                _ => {
                    let coin = response.expect_coin();
                    Action::Return(if self.saw_flag && coin {
                        Outcome::Win
                    } else {
                        Outcome::Lose
                    })
                }
            }
        }

        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("round-trip", "test")
        }
    }

    #[test]
    fn drive_runs_a_protocol_to_completion() {
        let mut memory = TestMemory::new(vec![true]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(drive(&mut protocol, &mut memory), Outcome::Win);
        assert_eq!(memory.calls, vec!["propagate", "collect", "flip"]);
    }

    #[test]
    fn drive_sees_its_own_writes() {
        // A false coin loses even though the flag round-trips.
        let mut memory = TestMemory::new(vec![false]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(drive(&mut protocol, &mut memory), Outcome::Lose);
        assert!(protocol.saw_flag, "the propagated flag must be collectable");
    }

    #[test]
    fn perform_maps_every_action_kind() {
        let mut memory = TestMemory::new(vec![true]);
        assert_eq!(
            memory.perform(Action::Propagate {
                entries: Vec::new()
            }),
            Some(Response::AckQuorum)
        );
        assert!(matches!(
            memory.perform(Action::Collect {
                instance: InstanceId::Contended
            }),
            Some(Response::Views(_))
        ));
        assert_eq!(
            memory.perform(Action::Flip { prob_one: 1.0 }),
            Some(Response::Coin(true))
        );
        assert_eq!(
            memory.perform(Action::Choose {
                choices: vec![7, 9]
            }),
            Some(Response::Chosen(7))
        );
        assert_eq!(memory.perform(Action::Return(Outcome::Win)), None);
    }

    #[test]
    fn inert_token_never_cancels_and_drive_cancellable_completes() {
        let cancel = CancelToken::none();
        assert!(!cancel.is_cancellable());
        assert!(!cancel.is_cancelled());
        cancel.cancel(); // no-op
        assert!(!cancel.is_cancelled());

        let mut memory = TestMemory::new(vec![true]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(
            drive_cancellable(&mut protocol, &mut memory, &cancel),
            Some(Outcome::Win)
        );
    }

    #[test]
    fn tripped_token_stops_the_drive_loop() {
        let cancel = CancelToken::new();
        assert!(cancel.is_cancellable());
        cancel.clone().cancel(); // clones share the flag
        assert!(cancel.is_cancelled());

        let mut memory = TestMemory::new(vec![true]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(drive_cancellable(&mut protocol, &mut memory, &cancel), None);
        assert!(memory.calls.is_empty(), "no operation may start");
    }

    #[test]
    fn passed_deadline_reports_cancelled() {
        let cancel = CancelToken::new().with_deadline(Instant::now());
        assert!(cancel.is_cancellable());
        assert!(cancel.is_cancelled());
        let future = CancelToken::none()
            .with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        assert!(future.is_cancellable());
        assert!(!future.is_cancelled());
    }

    #[test]
    fn mutable_references_implement_the_trait() {
        let mut memory = TestMemory::new(vec![true]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        // Driving through a &mut &mut chain compiles and behaves identically.
        let by_ref: &mut TestMemory = &mut memory;
        assert_eq!(drive(&mut protocol, by_ref), Outcome::Win);
    }

    /// The original blocking loop, verbatim, kept as the reference the
    /// machine-based [`drive`] is differenced against.
    fn legacy_drive<P, M>(protocol: &mut P, mut memory: M) -> Outcome
    where
        P: Protocol + ?Sized,
        M: SharedMemory,
    {
        let mut response = Response::Start;
        loop {
            match protocol.step(response) {
                Action::Return(outcome) => return outcome,
                action => {
                    response = memory
                        .perform(action)
                        .expect("only Action::Return yields no response");
                }
            }
        }
    }

    #[test]
    fn machine_drive_is_byte_identical_to_the_legacy_loop() {
        // Same protocol, same coin script: outcome AND the exact sequence of
        // shared-memory calls must match the pre-machine loop.
        for coins in [vec![true], vec![false], vec![true, false]] {
            let mut legacy_memory = TestMemory::new(coins.clone());
            let mut legacy_protocol = RoundTrip {
                stage: 0,
                saw_flag: false,
            };
            let legacy_outcome = legacy_drive(&mut legacy_protocol, &mut legacy_memory);

            let mut memory = TestMemory::new(coins.clone());
            let mut protocol = RoundTrip {
                stage: 0,
                saw_flag: false,
            };
            let outcome = drive(&mut protocol, &mut memory);

            assert_eq!(outcome, legacy_outcome, "coins {coins:?}");
            assert_eq!(memory.calls, legacy_memory.calls, "coins {coins:?}");
            assert_eq!(protocol.saw_flag, legacy_protocol.saw_flag);
        }
    }

    #[test]
    fn machine_steps_suspend_and_resume_one_op_at_a_time() {
        let mut memory = TestMemory::new(vec![true]);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        let mut machine = DriveMachine::new();
        assert!(machine.is_runnable());

        let mut ops = Vec::new();
        let outcome = loop {
            match machine.step(&mut protocol) {
                DriveStep::Done(outcome) => break outcome,
                DriveStep::NeedOp(op) => {
                    assert!(!machine.is_runnable(), "suspended while an Op is out");
                    ops.push(op.point());
                    let response = op.perform(&mut memory);
                    machine.resume(response);
                    assert!(machine.is_runnable());
                }
            }
        };
        assert_eq!(outcome, Outcome::Win);
        use crate::schedule::SchedulePoint;
        assert_eq!(
            ops,
            vec![
                SchedulePoint::Propagate,
                SchedulePoint::Collect,
                SchedulePoint::Flip
            ]
        );
        assert_eq!(memory.calls, vec!["propagate", "collect", "flip"]);
    }

    #[test]
    #[should_panic(expected = "resume() the pending Op before stepping again")]
    fn stepping_a_suspended_machine_panics() {
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        let mut machine = DriveMachine::new();
        let DriveStep::NeedOp(_) = machine.step(&mut protocol) else {
            panic!("first step must suspend");
        };
        machine.step(&mut protocol); // Op still outstanding
    }

    #[test]
    #[should_panic(expected = "double-resume")]
    fn double_resume_panics() {
        let mut machine = DriveMachine::new();
        machine.resume(Response::AckQuorum); // nothing outstanding
    }

    #[test]
    fn op_perform_maps_every_op_kind() {
        let mut memory = TestMemory::new(vec![true]);
        assert_eq!(
            Op::Propagate {
                entries: Vec::new()
            }
            .perform(&mut memory),
            Response::AckQuorum
        );
        assert!(matches!(
            Op::Collect {
                instance: InstanceId::Contended
            }
            .perform(&mut memory),
            Response::Views(_)
        ));
        assert_eq!(
            Op::Flip { prob_one: 1.0 }.perform(&mut memory),
            Response::Coin(true)
        );
        assert_eq!(
            Op::Choose {
                choices: vec![7, 9]
            }
            .perform(&mut memory),
            Response::Chosen(7)
        );
        assert_eq!(memory.calls, vec!["propagate", "collect", "flip", "choose"]);
    }
}
