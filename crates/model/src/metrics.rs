//! Complexity accounting shared by both execution backends.
//!
//! The paper measures two quantities (Section 2):
//!
//! * **message complexity** — the total number of point-to-point messages
//!   sent during the execution, and
//! * **time complexity** — by Claim 2.1, the maximum number of `communicate`
//!   calls performed by any single processor.
//!
//! [`ProcessMetrics`] tracks both per processor; [`ExecutionMetrics`]
//! aggregates them per execution.

use crate::ids::ProcId;
use serde::{Deserialize, Serialize};

/// Complexity counters for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessMetrics {
    /// Point-to-point messages sent by this processor (requests and replies).
    pub messages_sent: u64,
    /// Point-to-point messages delivered to this processor.
    pub messages_received: u64,
    /// `communicate` calls issued by this processor.
    pub communicate_calls: u64,
    /// Random coin flips / random choices performed.
    pub coin_flips: u64,
}

impl ProcessMetrics {
    /// Merge another processor-metrics record into this one (component-wise sum).
    pub fn absorb(&mut self, other: &ProcessMetrics) {
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.communicate_calls += other.communicate_calls;
        self.coin_flips += other.coin_flips;
    }

    /// Whether any counter has been touched.
    fn is_active(&self) -> bool {
        *self != ProcessMetrics::default()
    }
}

/// Complexity counters for one execution.
///
/// Stored as a dense vector indexed by processor — the counters are bumped on
/// every single message send and delivery, so access must be an array index,
/// not a tree walk. Processors that never recorded any activity are invisible
/// to the accessors (and to equality), exactly as when the storage was a map
/// keyed by active processors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    per_process: Vec<ProcessMetrics>,
}

impl ExecutionMetrics {
    /// An empty record.
    pub fn new() -> Self {
        ExecutionMetrics::default()
    }

    /// Mutable access to the counters of `p`, creating them if absent.
    pub fn proc_mut(&mut self, p: ProcId) -> &mut ProcessMetrics {
        if p.index() >= self.per_process.len() {
            self.per_process
                .resize(p.index() + 1, ProcessMetrics::default());
        }
        &mut self.per_process[p.index()]
    }

    /// The counters of `p`, if any activity was recorded for it.
    pub fn proc(&self, p: ProcId) -> Option<&ProcessMetrics> {
        self.per_process.get(p.index()).filter(|m| m.is_active())
    }

    /// Total messages sent by all processors (the paper's message complexity).
    pub fn total_messages(&self) -> u64 {
        self.per_process.iter().map(|m| m.messages_sent).sum()
    }

    /// Total `communicate` calls across all processors.
    pub fn total_communicate_calls(&self) -> u64 {
        self.per_process.iter().map(|m| m.communicate_calls).sum()
    }

    /// Maximum `communicate` calls by any single processor — the paper's time
    /// complexity measure (Claim 2.1).
    pub fn max_communicate_calls(&self) -> u64 {
        self.per_process
            .iter()
            .map(|m| m.communicate_calls)
            .max()
            .unwrap_or(0)
    }

    /// Total coin flips across all processors.
    pub fn total_coin_flips(&self) -> u64 {
        self.per_process.iter().map(|m| m.coin_flips).sum()
    }

    /// Number of processors with recorded activity.
    pub fn active_processes(&self) -> usize {
        self.per_process.iter().filter(|m| m.is_active()).count()
    }

    /// Iterate over the metrics of processors with recorded activity, in
    /// ascending processor order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &ProcessMetrics)> {
        self.per_process
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_active())
            .map(|(index, m)| (ProcId(index), m))
    }

    /// Merge another execution's metrics into this one.
    pub fn absorb(&mut self, other: &ExecutionMetrics) {
        for (p, m) in other.iter() {
            self.proc_mut(p).absorb(m);
        }
    }
}

impl PartialEq for ExecutionMetrics {
    fn eq(&self, other: &Self) -> bool {
        // Trailing untouched entries are representation, not content.
        self.iter().eq(other.iter())
    }
}

impl Eq for ExecutionMetrics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_maxima() {
        let mut m = ExecutionMetrics::new();
        m.proc_mut(ProcId(0)).messages_sent = 10;
        m.proc_mut(ProcId(0)).communicate_calls = 4;
        m.proc_mut(ProcId(1)).messages_sent = 5;
        m.proc_mut(ProcId(1)).communicate_calls = 9;
        m.proc_mut(ProcId(1)).coin_flips = 2;

        assert_eq!(m.total_messages(), 15);
        assert_eq!(m.total_communicate_calls(), 13);
        assert_eq!(m.max_communicate_calls(), 9);
        assert_eq!(m.total_coin_flips(), 2);
        assert_eq!(m.active_processes(), 2);
        assert_eq!(m.proc(ProcId(2)), None);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ExecutionMetrics::new();
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.max_communicate_calls(), 0);
        assert_eq!(m.active_processes(), 0);
    }

    #[test]
    fn absorb_sums_component_wise() {
        let mut a = ExecutionMetrics::new();
        a.proc_mut(ProcId(0)).messages_sent = 3;
        let mut b = ExecutionMetrics::new();
        b.proc_mut(ProcId(0)).messages_sent = 4;
        b.proc_mut(ProcId(1)).messages_received = 7;
        a.absorb(&b);
        assert_eq!(a.proc(ProcId(0)).unwrap().messages_sent, 7);
        assert_eq!(a.proc(ProcId(1)).unwrap().messages_received, 7);
    }
}
