//! Views returned by `communicate(collect, ·)`.
//!
//! A view used to be a `BTreeMap<Slot, Value>`; the simulator's hot loop
//! merges and clones views constantly, so the representation is now a dense,
//! index-addressed slot array: slots are small integers keyed by processor
//! (or by name for the renaming algorithm), which makes `get`/`insert` O(1)
//! array accesses, `merge` a linear sweep without tree rebalancing, and
//! `clone` a pair of memcpy-style `Vec` clones.

use crate::ids::{ProcId, Slot};
use crate::value::{Status, Value};
use serde::{Deserialize, Serialize};

/// One responder's view of a register array: a mapping from slot to value.
///
/// Slots the responder has never heard about are simply absent (the paper's
/// `⊥`). Internally the view keeps one dense array per slot family
/// ([`Slot::Proc`], [`Slot::Name`]) plus the single [`Slot::Global`] cell;
/// iteration order is `Proc(0), Proc(1), …, Name(0), Name(1), …, Global`,
/// which coincides with the derived order of [`Slot`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct View {
    /// Values of `Slot::Proc(i)`, indexed by `i`.
    procs: Vec<Option<Value>>,
    /// Values of `Slot::Name(u)`, indexed by `u`.
    names: Vec<Option<Value>>,
    /// Value of `Slot::Global`.
    global: Option<Value>,
    /// Number of non-`⊥` entries across all three families.
    occupied: usize,
}

impl View {
    /// An empty view (every slot is `⊥`).
    pub fn new() -> Self {
        View::default()
    }

    /// The value of `slot`, or `None` if the responder's view is `⊥` there.
    pub fn get(&self, slot: &Slot) -> Option<&Value> {
        match slot {
            Slot::Proc(p) => self.procs.get(p.index())?.as_ref(),
            Slot::Name(u) => self.names.get(*u)?.as_ref(),
            Slot::Global => self.global.as_ref(),
        }
    }

    fn cell_mut(&mut self, slot: Slot) -> &mut Option<Value> {
        match slot {
            Slot::Proc(p) => {
                let index = p.index();
                if index >= self.procs.len() {
                    self.procs.resize(index + 1, None);
                }
                &mut self.procs[index]
            }
            Slot::Name(u) => {
                if u >= self.names.len() {
                    self.names.resize(u + 1, None);
                }
                &mut self.names[u]
            }
            Slot::Global => &mut self.global,
        }
    }

    /// Record (merge) `value` into `slot`.
    pub fn insert(&mut self, slot: Slot, value: Value) {
        let cell = self.cell_mut(slot);
        let newly_occupied = match cell {
            Some(existing) => {
                existing.merge(&value);
                false
            }
            empty => {
                *empty = Some(value);
                true
            }
        };
        if newly_occupied {
            self.occupied += 1;
        }
    }

    /// Merge another view into this one slot-by-slot.
    pub fn merge(&mut self, other: &View) {
        for (slot, value) in other.iter() {
            self.insert(slot, value.clone());
        }
    }

    /// Iterate over the non-`⊥` entries in slot order
    /// (`Proc(0) < … < Name(0) < … < Global`).
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Value)> {
        let procs = self
            .procs
            .iter()
            .enumerate()
            .filter_map(|(i, v)| Some((Slot::Proc(ProcId(i)), v.as_ref()?)));
        let names = self
            .names
            .iter()
            .enumerate()
            .filter_map(|(u, v)| Some((Slot::Name(u), v.as_ref()?)));
        let global = self.global.iter().map(|v| (Slot::Global, v));
        procs.chain(names).chain(global)
    }

    /// Number of non-`⊥` entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether every slot of the view is `⊥`.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

impl PartialEq for View {
    fn eq(&self, other: &Self) -> bool {
        // Trailing `None` padding differs between views built in different
        // orders, so compare contents, not representation.
        self.occupied == other.occupied && self.iter().eq(other.iter())
    }
}

impl Eq for View {}

impl FromIterator<(Slot, Value)> for View {
    fn from_iter<T: IntoIterator<Item = (Slot, Value)>>(iter: T) -> Self {
        let mut view = View::new();
        for (slot, value) in iter {
            view.insert(slot, value);
        }
        view
    }
}

/// The result of one `communicate(collect, ·)` call: the views reported by a
/// quorum (more than `n/2`) of responders.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedViews {
    responses: Vec<(ProcId, View)>,
}

impl CollectedViews {
    /// Build a collection from `(responder, view)` pairs.
    pub fn new(responses: Vec<(ProcId, View)>) -> Self {
        CollectedViews { responses }
    }

    /// The individual responses.
    pub fn responses(&self) -> &[(ProcId, View)] {
        &self.responses
    }

    /// Number of responders.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// Whether no responses were collected.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// All slots that are non-`⊥` in at least one responder's view.
    pub fn observed_slots(&self) -> Vec<Slot> {
        let mut slots: Vec<Slot> = self
            .responses
            .iter()
            .flat_map(|(_, view)| view.iter().map(|(slot, _)| slot))
            .collect();
        slots.sort();
        slots.dedup();
        slots
    }

    /// All processors whose slot is non-`⊥` in at least one view
    /// (the paper's `ℓ ← {j | ∃k : Views[k][j] ≠ ⊥}`, Figure 2 line 17).
    pub fn observed_procs(&self) -> Vec<ProcId> {
        let mut procs: Vec<ProcId> = self
            .observed_slots()
            .into_iter()
            .filter_map(|slot| match slot {
                Slot::Proc(p) => Some(p),
                _ => None,
            })
            .collect();
        procs.sort_unstable();
        procs.dedup();
        procs
    }

    /// Does any responder report a non-`⊥` value for `slot`?
    pub fn any_view_has(&self, slot: &Slot) -> bool {
        self.responses
            .iter()
            .any(|(_, view)| view.get(slot).is_some())
    }

    /// Does some responder report a value at `slot` satisfying `pred`, while
    /// no responder reports a value satisfying `excluded`?
    ///
    /// This is the shape of the PoisonPill death test (Figure 1 line 10): "the
    /// slot is seen as Commit or High-Pri in some view and as Low-Pri in no
    /// view".
    pub fn exists_without(
        &self,
        slot: &Slot,
        pred: impl Fn(&Value) -> bool,
        excluded: impl Fn(&Value) -> bool,
    ) -> bool {
        let mut saw_pred = false;
        for (_, view) in &self.responses {
            if let Some(value) = view.get(slot) {
                if excluded(value) {
                    return false;
                }
                if pred(value) {
                    saw_pred = true;
                }
            }
        }
        saw_pred
    }

    /// The statuses reported for processor `p`'s slot in `instance`-agnostic
    /// form (the collect already targeted a single instance).
    pub fn statuses_of(&self, p: ProcId) -> Vec<&Status> {
        self.responses
            .iter()
            .filter_map(|(_, view)| view.get(&Slot::Proc(p)))
            .filter_map(Value::as_status)
            .collect()
    }

    /// Maximum `Round` value reported for any slot other than `exclude`.
    pub fn max_round_excluding(&self, exclude: ProcId) -> u32 {
        self.responses
            .iter()
            .flat_map(|(_, view)| view.iter())
            .filter(|(slot, _)| *slot != Slot::Proc(exclude))
            .filter_map(|(_, value)| value.as_round())
            .max()
            .unwrap_or(0)
    }

    /// Union of all views: one merged view.
    pub fn merged(&self) -> View {
        let mut merged = View::new();
        for (_, view) in &self.responses {
            merged.merge(view);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Priority;

    fn status(p: Priority) -> Value {
        Value::Status(Status::resolved(p))
    }

    #[test]
    fn view_insert_merges() {
        let mut view = View::new();
        view.insert(Slot::Global, Value::Flag(false));
        view.insert(Slot::Global, Value::Flag(true));
        view.insert(Slot::Global, Value::Flag(false));
        assert_eq!(view.get(&Slot::Global).unwrap().as_flag(), Some(true));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn view_equality_ignores_capacity_padding() {
        // Insert a high slot then a low slot; the padded Nones must not make
        // structurally identical views compare unequal.
        let mut a = View::new();
        a.insert(Slot::Proc(ProcId(5)), Value::Flag(true));
        let mut b = View::new();
        b.insert(Slot::Proc(ProcId(0)), Value::Flag(true));
        b.insert(Slot::Proc(ProcId(5)), Value::Flag(true));
        assert_ne!(a, b);
        a.insert(Slot::Proc(ProcId(0)), Value::Flag(true));
        assert_eq!(a, b);
    }

    #[test]
    fn view_iteration_is_in_slot_order() {
        let view: View = [
            (Slot::Global, Value::Flag(true)),
            (Slot::Name(2), Value::Flag(true)),
            (Slot::Proc(ProcId(1)), Value::Round(4)),
            (Slot::Name(0), Value::Flag(false)),
        ]
        .into_iter()
        .collect();
        let slots: Vec<Slot> = view.iter().map(|(slot, _)| slot).collect();
        assert_eq!(
            slots,
            vec![
                Slot::Proc(ProcId(1)),
                Slot::Name(0),
                Slot::Name(2),
                Slot::Global
            ]
        );
        assert_eq!(view.len(), 4);
    }

    #[test]
    fn observed_procs_unions_views() {
        let v1: View = [(Slot::Proc(ProcId(0)), status(Priority::Low))]
            .into_iter()
            .collect();
        let v2: View = [
            (Slot::Proc(ProcId(2)), Value::Status(Status::Commit)),
            (Slot::Name(4), Value::Flag(true)),
        ]
        .into_iter()
        .collect();
        let collected = CollectedViews::new(vec![(ProcId(9), v1), (ProcId(8), v2)]);
        assert_eq!(collected.observed_procs(), vec![ProcId(0), ProcId(2)]);
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn exists_without_matches_poisonpill_death_rule() {
        // Processor j is seen as Commit by one responder and Low by none: the
        // predicate holds, so a low-priority observer must die.
        let v1: View = [(Slot::Proc(ProcId(3)), Value::Status(Status::Commit))]
            .into_iter()
            .collect();
        let collected = CollectedViews::new(vec![(ProcId(0), v1)]);
        let is_commit_or_high = |v: &Value| {
            v.as_status().is_some_and(|s| {
                matches!(s, Status::Commit) || s.priority() == Some(Priority::High)
            })
        };
        let is_low = |v: &Value| {
            v.as_status()
                .is_some_and(|s| s.priority() == Some(Priority::Low))
        };
        assert!(collected.exists_without(&Slot::Proc(ProcId(3)), is_commit_or_high, is_low));

        // If any responder reports Low for the same slot, the rule no longer fires.
        let v2: View = [(Slot::Proc(ProcId(3)), status(Priority::Low))]
            .into_iter()
            .collect();
        let collected = CollectedViews::new(vec![
            (
                ProcId(0),
                [(Slot::Proc(ProcId(3)), Value::Status(Status::Commit))]
                    .into_iter()
                    .collect(),
            ),
            (ProcId(1), v2),
        ]);
        assert!(!collected.exists_without(&Slot::Proc(ProcId(3)), is_commit_or_high, is_low));
    }

    #[test]
    fn max_round_excluding_ignores_own_slot() {
        let v: View = [
            (Slot::Proc(ProcId(0)), Value::Round(5)),
            (Slot::Proc(ProcId(1)), Value::Round(3)),
        ]
        .into_iter()
        .collect();
        let collected = CollectedViews::new(vec![(ProcId(7), v)]);
        assert_eq!(collected.max_round_excluding(ProcId(0)), 3);
        assert_eq!(collected.max_round_excluding(ProcId(2)), 5);
        assert_eq!(CollectedViews::default().max_round_excluding(ProcId(0)), 0);
    }

    #[test]
    fn merged_view_unions_entries() {
        let v1: View = [(Slot::Name(1), Value::Flag(true))].into_iter().collect();
        let v2: View = [(Slot::Name(2), Value::Flag(true))].into_iter().collect();
        let merged = CollectedViews::new(vec![(ProcId(0), v1), (ProcId(1), v2)]).merged();
        assert_eq!(merged.len(), 2);
    }
}
