//! Views returned by `communicate(collect, ·)`.
//!
//! A view used to be a `BTreeMap<Slot, Value>`; the simulator's hot loop
//! merges and clones views constantly, so the representation is a dense,
//! index-addressed slot array: slots are small integers keyed by processor
//! (or by name for the renaming algorithm), which makes `get`/`insert` O(1)
//! array accesses and `merge` a linear sweep without tree rebalancing.
//!
//! On top of the dense layout every view is **versioned**: a per-view write
//! counter ([`View::version`]) and a per-slot stamp recording the counter
//! value of the slot's last *effective* write (one that actually changed the
//! merged value). [`View::delta_since`] then enumerates exactly the entries
//! written after a given version, which is what lets a collect reply ship
//! only the entries the requester has not seen yet instead of a full copy of
//! the slot array. Version numbers are replica-local bookkeeping: they are
//! never compared across replicas and do not participate in view equality.

use crate::ids::{ProcId, Slot};
use crate::value::{Status, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One slot of a view: the merged value plus the version stamp of its last
/// effective write.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Cell {
    value: Option<Value>,
    stamp: u64,
}

/// Cells per copy-on-write block of a slot family.
const CHUNK: usize = 32;

/// A fixed block of cells with summary metadata for fast skipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Chunk {
    cells: [Cell; CHUNK],
    /// Maximum stamp of any cell in the block (0 when untouched), so
    /// [`View::delta_since`] can skip whole blocks.
    max_stamp: u64,
    /// Number of occupied cells, so iteration can skip empty blocks.
    occupied: u32,
}

impl Default for Chunk {
    fn default() -> Self {
        Chunk {
            cells: std::array::from_fn(|_| Cell::default()),
            max_stamp: 0,
            occupied: 0,
        }
    }
}

/// A dense, index-addressed cell array stored as `Arc`-shared fixed-size
/// blocks.
///
/// The block structure makes snapshots cheap to *diverge from*: cloning the
/// table is one `Arc` bump per block, and a write after a snapshot
/// copy-on-writes only the CHUNK-cell block it lands in instead of the whole
/// array. Untouched tails share one global empty block, so growing a view
/// allocates nothing until a block is actually written.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CellTable {
    chunks: Vec<Arc<Chunk>>,
}

/// The shared all-`⊥` block used for freshly grown table tails.
fn empty_chunk() -> Arc<Chunk> {
    static EMPTY: std::sync::OnceLock<Arc<Chunk>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Chunk::default())).clone()
}

impl CellTable {
    fn get(&self, index: usize) -> Option<&Cell> {
        let cell = &self.chunks.get(index / CHUNK)?.cells[index % CHUNK];
        cell.value.is_some().then_some(cell)
    }

    /// The block containing `index`, unshared and ready to mutate.
    fn chunk_mut(&mut self, index: usize) -> &mut Chunk {
        let block = index / CHUNK;
        if block >= self.chunks.len() {
            self.chunks.resize_with(block + 1, empty_chunk);
        }
        Arc::make_mut(&mut self.chunks[block])
    }

    /// Iterate `(index, cell)` over occupied cells in ascending index order,
    /// skipping entirely empty blocks.
    fn iter(&self) -> impl Iterator<Item = (usize, &Cell)> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, chunk)| chunk.occupied > 0)
            .flat_map(|(block, chunk)| {
                chunk
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(_, cell)| cell.value.is_some())
                    .map(move |(offset, cell)| (block * CHUNK + offset, cell))
            })
    }

    /// Iterate `(index, cell)` over cells stamped after `since`, skipping
    /// blocks whose newest stamp is not.
    fn delta_since(&self, since: u64) -> impl Iterator<Item = (usize, &Cell)> {
        self.chunks
            .iter()
            .enumerate()
            .filter(move |(_, chunk)| chunk.max_stamp > since)
            .flat_map(move |(block, chunk)| {
                chunk
                    .cells
                    .iter()
                    .enumerate()
                    .filter(move |(_, cell)| cell.stamp > since && cell.value.is_some())
                    .map(move |(offset, cell)| (block * CHUNK + offset, cell))
            })
    }
}

/// One responder's view of a register array: a mapping from slot to value.
///
/// Slots the responder has never heard about are simply absent (the paper's
/// `⊥`). Internally the view keeps one dense array per slot family
/// ([`Slot::Proc`], [`Slot::Name`]) plus the single [`Slot::Global`] cell;
/// iteration order is `Proc(0), Proc(1), …, Name(0), Name(1), …, Global`,
/// which coincides with the derived order of [`Slot`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct View {
    /// Values of `Slot::Proc(i)`, indexed by `i`.
    procs: CellTable,
    /// Values of `Slot::Name(u)`, indexed by `u`.
    names: CellTable,
    /// Value of `Slot::Global`.
    global: Cell,
    /// Number of non-`⊥` entries across all three families.
    occupied: usize,
    /// Count of effective writes; each one stamps the written cell.
    version: u64,
}

impl View {
    /// An empty view (every slot is `⊥`).
    pub fn new() -> Self {
        View::default()
    }

    /// The value of `slot`, or `None` if the responder's view is `⊥` there.
    pub fn get(&self, slot: &Slot) -> Option<&Value> {
        match slot {
            Slot::Proc(p) => self.procs.get(p.index())?.value.as_ref(),
            Slot::Name(u) => self.names.get(*u)?.value.as_ref(),
            Slot::Global => self.global.value.as_ref(),
        }
    }

    /// The number of effective writes this view has absorbed. Monotone;
    /// replica-local (never comparable across views).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Merge `value` into `cell`; returns `(changed, newly_occupied)`.
    fn merge_cell(cell: &mut Cell, value: Value) -> (bool, bool) {
        match &mut cell.value {
            Some(existing) => (existing.merge(&value), false),
            empty => {
                *empty = Some(value);
                (true, true)
            }
        }
    }

    /// Record (merge) `value` into `slot`; returns whether the view changed.
    pub fn insert(&mut self, slot: Slot, value: Value) -> bool {
        let (changed, newly_occupied) = match slot {
            Slot::Global => {
                let (changed, newly) = Self::merge_cell(&mut self.global, value);
                if changed {
                    self.version += 1;
                    self.global.stamp = self.version;
                }
                (changed, newly)
            }
            Slot::Proc(p) => {
                Self::insert_indexed(&mut self.procs, &mut self.version, p.index(), value)
            }
            Slot::Name(u) => Self::insert_indexed(&mut self.names, &mut self.version, u, value),
        };
        if newly_occupied {
            self.occupied += 1;
        }
        changed
    }

    fn insert_indexed(
        table: &mut CellTable,
        version: &mut u64,
        index: usize,
        value: Value,
    ) -> (bool, bool) {
        let chunk = table.chunk_mut(index);
        let offset = index % CHUNK;
        let (changed, newly) = Self::merge_cell(&mut chunk.cells[offset], value);
        if changed {
            *version += 1;
            chunk.cells[offset].stamp = *version;
            chunk.max_stamp = *version;
        }
        if newly {
            chunk.occupied += 1;
        }
        (changed, newly)
    }

    /// Merge another view into this one slot-by-slot.
    pub fn merge(&mut self, other: &View) {
        for (slot, value) in other.iter() {
            self.insert(slot, value.clone());
        }
    }

    /// Iterate over the non-`⊥` entries in slot order
    /// (`Proc(0) < … < Name(0) < … < Global`).
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Value)> {
        let procs = self
            .procs
            .iter()
            .map(|(i, cell)| (Slot::Proc(ProcId(i)), cell));
        let names = self.names.iter().map(|(u, cell)| (Slot::Name(u), cell));
        let global =
            std::iter::once((Slot::Global, &self.global)).filter(|(_, cell)| cell.value.is_some());
        procs
            .chain(names)
            .chain(global)
            .map(|(slot, cell)| (slot, cell.value.as_ref().expect("occupied cell")))
    }

    /// Iterate over the entries whose last effective write is newer than
    /// `since` (a value previously obtained from [`View::version`] of this
    /// same view), in slot order. `delta_since(0)` enumerates every entry.
    pub fn delta_since(&self, since: u64) -> impl Iterator<Item = (Slot, &Value)> {
        let procs = self
            .procs
            .delta_since(since)
            .map(|(i, cell)| (Slot::Proc(ProcId(i)), cell));
        let names = self
            .names
            .delta_since(since)
            .map(|(u, cell)| (Slot::Name(u), cell));
        let global = std::iter::once(&self.global)
            .filter(move |cell| cell.stamp > since && cell.value.is_some())
            .map(|cell| (Slot::Global, cell));
        procs
            .chain(names)
            .chain(global)
            .map(|(slot, cell)| (slot, cell.value.as_ref().expect("stamped cell")))
    }

    /// Visit every non-`⊥` entry in slot order with a plain nested loop.
    ///
    /// Semantically identical to [`View::iter`]; exists because the
    /// protocols' aggregate rules (death rules, observed-participant sweeps)
    /// visit quorum × entries cells per decision, where a tight loop beats
    /// the layered iterator chain.
    pub fn for_each(&self, mut f: impl FnMut(Slot, &Value)) {
        for (block, chunk) in self.procs.chunks.iter().enumerate() {
            if chunk.occupied == 0 {
                continue;
            }
            for (offset, cell) in chunk.cells.iter().enumerate() {
                if let Some(value) = &cell.value {
                    f(Slot::Proc(ProcId(block * CHUNK + offset)), value);
                }
            }
        }
        for (block, chunk) in self.names.chunks.iter().enumerate() {
            if chunk.occupied == 0 {
                continue;
            }
            for (offset, cell) in chunk.cells.iter().enumerate() {
                if let Some(value) = &cell.value {
                    f(Slot::Name(block * CHUNK + offset), value);
                }
            }
        }
        if let Some(value) = &self.global.value {
            f(Slot::Global, value);
        }
    }

    /// Number of non-`⊥` entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether every slot of the view is `⊥`.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// A copy that shares no *slot storage* with `self`: every cell block
    /// is re-allocated and copied. (Values clone as values do — a spilled
    /// [`crate::value::ProcSet`] list still clones by refcount.)
    ///
    /// `clone` shares the blocks structurally (copy-on-write), which is what
    /// every hot path wants; this detached variant exists for the retained
    /// clone-per-message payload baseline, whose point is to reproduce the
    /// historical cost of materializing the slot array of a full view per
    /// collect reply.
    pub fn detached_clone(&self) -> View {
        let detach = |table: &CellTable| CellTable {
            chunks: table
                .chunks
                .iter()
                .map(|chunk| Arc::new(Chunk::clone(chunk)))
                .collect(),
        };
        View {
            procs: detach(&self.procs),
            names: detach(&self.names),
            global: self.global.clone(),
            occupied: self.occupied,
            version: self.version,
        }
    }
}

impl PartialEq for View {
    fn eq(&self, other: &Self) -> bool {
        // Trailing `⊥` padding differs between views built in different
        // orders, and version stamps are replica-local bookkeeping, so
        // compare contents only.
        self.occupied == other.occupied && self.iter().eq(other.iter())
    }
}

impl Eq for View {}

impl FromIterator<(Slot, Value)> for View {
    fn from_iter<T: IntoIterator<Item = (Slot, Value)>>(iter: T) -> Self {
        let mut view = View::new();
        for (slot, value) in iter {
            view.insert(slot, value);
        }
        view
    }
}

/// The result of one `communicate(collect, ·)` call: the views reported by a
/// quorum (more than `n/2`) of responders.
///
/// Views are held behind [`Arc`] so that a copy-on-write snapshot taken by a
/// responder can travel to the requester, into this collection and into the
/// requester's delta cache without ever duplicating the slot array.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedViews {
    responses: Vec<(ProcId, Arc<View>)>,
}

impl CollectedViews {
    /// Build a collection from owned `(responder, view)` pairs.
    pub fn new(responses: Vec<(ProcId, View)>) -> Self {
        CollectedViews {
            responses: responses
                .into_iter()
                .map(|(p, view)| (p, Arc::new(view)))
                .collect(),
        }
    }

    /// Build a collection from already-shared views (the backends' path).
    pub fn from_shared(responses: Vec<(ProcId, Arc<View>)>) -> Self {
        CollectedViews { responses }
    }

    /// The individual responses.
    pub fn responses(&self) -> &[(ProcId, Arc<View>)] {
        &self.responses
    }

    /// Number of responders.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// Whether no responses were collected.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// All slots that are non-`⊥` in at least one responder's view, in slot
    /// order.
    ///
    /// Computed by marking per-family occupancy bitmaps and walking them once
    /// — O(total entries + distinct slots) — instead of collecting every
    /// entry of every view and sorting, which dominated the sifting phases'
    /// step cost at large `n` (quorum × slots entries per call).
    pub fn observed_slots(&self) -> Vec<Slot> {
        let mut procs = BitRow::new();
        let mut names = BitRow::new();
        let mut global = false;
        for (_, view) in &self.responses {
            view.for_each(|slot, _| match slot {
                Slot::Proc(p) => {
                    procs.set(p.index());
                }
                Slot::Name(u) => {
                    names.set(u);
                }
                Slot::Global => global = true,
            });
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(procs.len() + names.len() + 1);
        slots.extend(procs.iter().map(|i| Slot::Proc(ProcId(i))));
        slots.extend(names.iter().map(Slot::Name));
        if global {
            slots.push(Slot::Global);
        }
        slots
    }

    /// All processors whose slot is non-`⊥` in at least one view
    /// (the paper's `ℓ ← {j | ∃k : Views[k][j] ≠ ⊥}`, Figure 2 line 17).
    pub fn observed_procs(&self) -> Vec<ProcId> {
        let mut procs: Vec<ProcId> = self
            .observed_slots()
            .into_iter()
            .filter_map(|slot| match slot {
                Slot::Proc(p) => Some(p),
                _ => None,
            })
            .collect();
        procs.sort_unstable();
        procs.dedup();
        procs
    }

    /// Does any responder report a non-`⊥` value for `slot`?
    pub fn any_view_has(&self, slot: &Slot) -> bool {
        self.responses
            .iter()
            .any(|(_, view)| view.get(slot).is_some())
    }

    /// Does some responder report a value at `slot` satisfying `pred`, while
    /// no responder reports a value satisfying `excluded`?
    ///
    /// This is the shape of the PoisonPill death test (Figure 1 line 10): "the
    /// slot is seen as Commit or High-Pri in some view and as Low-Pri in no
    /// view".
    pub fn exists_without(
        &self,
        slot: &Slot,
        pred: impl Fn(&Value) -> bool,
        excluded: impl Fn(&Value) -> bool,
    ) -> bool {
        let mut saw_pred = false;
        for (_, view) in &self.responses {
            if let Some(value) = view.get(slot) {
                if excluded(value) {
                    return false;
                }
                if pred(value) {
                    saw_pred = true;
                }
            }
        }
        saw_pred
    }

    /// The statuses reported for processor `p`'s slot in `instance`-agnostic
    /// form (the collect already targeted a single instance).
    pub fn statuses_of(&self, p: ProcId) -> Vec<&Status> {
        self.responses
            .iter()
            .filter_map(|(_, view)| view.get(&Slot::Proc(p)))
            .filter_map(Value::as_status)
            .collect()
    }

    /// Maximum `Round` value reported for any slot other than `exclude`.
    pub fn max_round_excluding(&self, exclude: ProcId) -> u32 {
        let mut max = 0;
        for (_, view) in &self.responses {
            view.for_each(|slot, value| {
                if slot != Slot::Proc(exclude) {
                    if let Some(round) = value.as_round() {
                        max = max.max(round);
                    }
                }
            });
        }
        max
    }

    /// Union of all views: one merged view.
    pub fn merged(&self) -> View {
        let mut merged = View::new();
        for (_, view) in &self.responses {
            merged.merge(view);
        }
        merged
    }
}

/// A growable bitmap over small indexes, used for set-union sweeps over
/// views (observed slots, death-rule bookkeeping) without sort-and-dedup
/// passes or per-element tree allocations.
#[derive(Debug, Clone, Default)]
pub struct BitRow {
    words: Vec<u64>,
    count: usize,
}

impl BitRow {
    /// An empty bitmap.
    pub fn new() -> Self {
        BitRow::default()
    }

    /// Mark `index`; returns whether it was newly marked.
    pub fn set(&mut self, index: usize) -> bool {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (index % 64);
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Unmark every index, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Whether `index` is marked.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|word| word & (1 << (index % 64)) != 0)
    }

    /// Number of marked indexes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate over marked indexes in ascending order (word-skipping).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(word_index, word)| {
                let mut bits = *word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(word_index * 64 + bit)
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Priority;

    fn status(p: Priority) -> Value {
        Value::Status(Status::resolved(p))
    }

    #[test]
    fn view_insert_merges() {
        let mut view = View::new();
        assert!(view.insert(Slot::Global, Value::Flag(false)));
        assert!(view.insert(Slot::Global, Value::Flag(true)));
        assert!(!view.insert(Slot::Global, Value::Flag(false)));
        assert_eq!(view.get(&Slot::Global).unwrap().as_flag(), Some(true));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn view_equality_ignores_capacity_padding() {
        // Insert a high slot then a low slot; the padded cells must not make
        // structurally identical views compare unequal.
        let mut a = View::new();
        a.insert(Slot::Proc(ProcId(5)), Value::Flag(true));
        let mut b = View::new();
        b.insert(Slot::Proc(ProcId(0)), Value::Flag(true));
        b.insert(Slot::Proc(ProcId(5)), Value::Flag(true));
        assert_ne!(a, b);
        a.insert(Slot::Proc(ProcId(0)), Value::Flag(true));
        assert_eq!(a, b, "version stamps and padding must not affect equality");
    }

    #[test]
    fn view_iteration_is_in_slot_order() {
        let view: View = [
            (Slot::Global, Value::Flag(true)),
            (Slot::Name(2), Value::Flag(true)),
            (Slot::Proc(ProcId(1)), Value::Round(4)),
            (Slot::Name(0), Value::Flag(false)),
        ]
        .into_iter()
        .collect();
        let slots: Vec<Slot> = view.iter().map(|(slot, _)| slot).collect();
        assert_eq!(
            slots,
            vec![
                Slot::Proc(ProcId(1)),
                Slot::Name(0),
                Slot::Name(2),
                Slot::Global
            ]
        );
        assert_eq!(view.len(), 4);
    }

    #[test]
    fn version_counts_effective_writes_only() {
        let mut view = View::new();
        assert_eq!(view.version(), 0);
        view.insert(Slot::Proc(ProcId(2)), Value::Round(1));
        assert_eq!(view.version(), 1);
        // Idempotent re-delivery does not advance the version.
        view.insert(Slot::Proc(ProcId(2)), Value::Round(1));
        assert_eq!(view.version(), 1);
        view.insert(Slot::Proc(ProcId(2)), Value::Round(5));
        assert_eq!(view.version(), 2);
    }

    #[test]
    fn delta_since_enumerates_exactly_the_newer_entries() {
        let mut view = View::new();
        view.insert(Slot::Proc(ProcId(0)), Value::Round(1));
        view.insert(Slot::Name(1), Value::Flag(true));
        let checkpoint = view.version();

        // Unchanged merge: delta stays empty.
        view.insert(Slot::Proc(ProcId(0)), Value::Round(1));
        assert_eq!(view.delta_since(checkpoint).count(), 0);

        // One re-written slot and one new slot after the checkpoint.
        view.insert(Slot::Proc(ProcId(0)), Value::Round(7));
        view.insert(Slot::Global, Value::Flag(true));
        let delta: Vec<Slot> = view.delta_since(checkpoint).map(|(slot, _)| slot).collect();
        assert_eq!(delta, vec![Slot::Proc(ProcId(0)), Slot::Global]);

        // Replaying the delta over a copy taken at the checkpoint
        // reconstructs the current view exactly.
        let mut replayed: View = [
            (Slot::Proc(ProcId(0)), Value::Round(1)),
            (Slot::Name(1), Value::Flag(true)),
        ]
        .into_iter()
        .collect();
        for (slot, value) in view.delta_since(checkpoint) {
            replayed.insert(slot, value.clone());
        }
        assert_eq!(replayed, view);
        assert_eq!(view.delta_since(0).count(), view.len());
    }

    #[test]
    fn write_after_snapshot_recopies_exactly_one_chunk() {
        let mut view = View::new();
        view.insert(Slot::Proc(ProcId(0)), Value::Round(1));
        view.insert(Slot::Proc(ProcId(CHUNK + 1)), Value::Round(2));
        let snapshot = view.clone();
        // A structural clone shares every block.
        assert!(Arc::ptr_eq(
            &view.procs.chunks[0],
            &snapshot.procs.chunks[0]
        ));
        assert!(Arc::ptr_eq(
            &view.procs.chunks[1],
            &snapshot.procs.chunks[1]
        ));

        // One write into block 0: that block — and only that block — is
        // re-copied; the untouched block stays shared with the snapshot.
        view.insert(Slot::Proc(ProcId(1)), Value::Round(3));
        assert!(
            !Arc::ptr_eq(&view.procs.chunks[0], &snapshot.procs.chunks[0]),
            "the written block must detach from the snapshot"
        );
        assert!(
            Arc::ptr_eq(&view.procs.chunks[1], &snapshot.procs.chunks[1]),
            "an untouched block must stay refcount-shared"
        );
        // The snapshot still observes the pre-write state.
        assert!(snapshot.get(&Slot::Proc(ProcId(1))).is_none());
        assert_eq!(view.get(&Slot::Proc(ProcId(1))), Some(&Value::Round(3)));
    }

    #[test]
    fn untouched_tail_blocks_share_the_global_empty_chunk() {
        let mut view = View::new();
        // Growing straight to block 2 fills blocks 0-1 with the shared
        // all-⊥ block instead of allocating fresh zeroed blocks.
        view.insert(Slot::Proc(ProcId(2 * CHUNK + 5)), Value::Flag(true));
        assert!(Arc::ptr_eq(&view.procs.chunks[0], &empty_chunk()));
        assert!(Arc::ptr_eq(&view.procs.chunks[1], &empty_chunk()));
        assert!(!Arc::ptr_eq(&view.procs.chunks[2], &empty_chunk()));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn merge_no_op_writes_leave_versions_and_stamps_alone() {
        let mut view = View::new();
        view.insert(Slot::Proc(ProcId(3)), Value::Round(5));
        let version = view.version();
        assert_eq!(view.procs.chunks[0].cells[3].stamp, version);

        // An idempotent re-delivery and a stale (smaller) round are both
        // merge no-ops: no version advance, no restamp, no delta entries.
        assert!(!view.insert(Slot::Proc(ProcId(3)), Value::Round(5)));
        assert!(!view.insert(Slot::Proc(ProcId(3)), Value::Round(2)));
        assert_eq!(view.version(), version);
        assert_eq!(view.procs.chunks[0].cells[3].stamp, version);
        assert_eq!(view.procs.chunks[0].max_stamp, version);
        assert_eq!(view.delta_since(version).count(), 0);

        // A no-op write after a snapshot still unshares the block it lands
        // in (`chunk_mut` runs before the merge outcome is known) — the
        // price is one block copy, never a wrong stamp or a false delta.
        let snapshot = view.clone();
        assert!(!view.insert(Slot::Proc(ProcId(3)), Value::Round(5)));
        assert!(!Arc::ptr_eq(
            &view.procs.chunks[0],
            &snapshot.procs.chunks[0]
        ));
        assert_eq!(view, snapshot, "contents must be untouched");
        assert_eq!(view.version(), snapshot.version());
        assert_eq!(view.delta_since(version).count(), 0);
    }

    #[test]
    fn observed_procs_unions_views() {
        let v1: View = [(Slot::Proc(ProcId(0)), status(Priority::Low))]
            .into_iter()
            .collect();
        let v2: View = [
            (Slot::Proc(ProcId(2)), Value::Status(Status::Commit)),
            (Slot::Name(4), Value::Flag(true)),
        ]
        .into_iter()
        .collect();
        let collected = CollectedViews::new(vec![(ProcId(9), v1), (ProcId(8), v2)]);
        assert_eq!(collected.observed_procs(), vec![ProcId(0), ProcId(2)]);
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn exists_without_matches_poisonpill_death_rule() {
        // Processor j is seen as Commit by one responder and Low by none: the
        // predicate holds, so a low-priority observer must die.
        let v1: View = [(Slot::Proc(ProcId(3)), Value::Status(Status::Commit))]
            .into_iter()
            .collect();
        let collected = CollectedViews::new(vec![(ProcId(0), v1)]);
        let is_commit_or_high = |v: &Value| {
            v.as_status().is_some_and(|s| {
                matches!(s, Status::Commit) || s.priority() == Some(Priority::High)
            })
        };
        let is_low = |v: &Value| {
            v.as_status()
                .is_some_and(|s| s.priority() == Some(Priority::Low))
        };
        assert!(collected.exists_without(&Slot::Proc(ProcId(3)), is_commit_or_high, is_low));

        // If any responder reports Low for the same slot, the rule no longer fires.
        let v2: View = [(Slot::Proc(ProcId(3)), status(Priority::Low))]
            .into_iter()
            .collect();
        let collected = CollectedViews::new(vec![
            (
                ProcId(0),
                [(Slot::Proc(ProcId(3)), Value::Status(Status::Commit))]
                    .into_iter()
                    .collect(),
            ),
            (ProcId(1), v2),
        ]);
        assert!(!collected.exists_without(&Slot::Proc(ProcId(3)), is_commit_or_high, is_low));
    }

    #[test]
    fn max_round_excluding_ignores_own_slot() {
        let v: View = [
            (Slot::Proc(ProcId(0)), Value::Round(5)),
            (Slot::Proc(ProcId(1)), Value::Round(3)),
        ]
        .into_iter()
        .collect();
        let collected = CollectedViews::new(vec![(ProcId(7), v)]);
        assert_eq!(collected.max_round_excluding(ProcId(0)), 3);
        assert_eq!(collected.max_round_excluding(ProcId(2)), 5);
        assert_eq!(CollectedViews::default().max_round_excluding(ProcId(0)), 0);
    }

    #[test]
    fn merged_view_unions_entries() {
        let v1: View = [(Slot::Name(1), Value::Flag(true))].into_iter().collect();
        let v2: View = [(Slot::Name(2), Value::Flag(true))].into_iter().collect();
        let merged = CollectedViews::new(vec![(ProcId(0), v1), (ProcId(1), v2)]).merged();
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn shared_views_compare_by_contents() {
        let view: View = [(Slot::Global, Value::Flag(true))].into_iter().collect();
        let a = CollectedViews::from_shared(vec![(ProcId(0), Arc::new(view.clone()))]);
        let b = CollectedViews::new(vec![(ProcId(0), view)]);
        assert_eq!(a, b);
    }
}
