//! Schedule control for concurrent backends: the gate half of the
//! [`SharedMemory`] contract.
//!
//! The discrete-event simulator gives the adversary total control over
//! interleavings because *it* owns the event loop. A concurrent backend does
//! not: its interleavings come from real threads racing for locks, which is
//! exactly the concurrency model shipped to users — and exactly the one the
//! adversarial explorer could not reach. This module closes that gap with a
//! *schedule gate*: a backend that implements [`ScheduledMemory`] announces
//! every upcoming shared-memory operation as a [`SchedulePoint`] and blocks
//! in [`ScheduledMemory::reach`] until an external controller grants it. A
//! controller that only ever grants one processor at a time therefore
//! serializes the execution into an adversary-chosen interleaving of the
//! *real* backend's operations — same locks, same copy-on-write snapshots,
//! same register bank — while staying deterministic enough to record, replay
//! and delta-debug (see `fle_runtime::sched` and `fle_explore::concurrent`).
//!
//! [`drive_scheduled`] is the gated twin of [`crate::drive`]: it passes every
//! action (including the final [`Action::Return`], whose visibility order
//! matters to linearizability checks) through the gate, and translates a
//! [`GateVerdict::Crashed`] verdict into the processor stopping silently —
//! the shared-memory analogue of the adversary crashing a processor
//! mid-protocol.
//!
//! # Determinism guarantee
//!
//! If (a) the controller's grant sequence is a deterministic function of the
//! observable gate states, and (b) each processor's local computation and
//! randomness are deterministic between gates (seeded RNGs), then the entire
//! execution — every register state, coin flip and outcome — is a
//! deterministic function of the grant sequence. This is what makes a
//! recorded decision trace on the concurrent backend replayable.
//!
//! # Example
//!
//! A gate that grants everything immediately turns [`drive_scheduled`] back
//! into [`crate::drive`]; one that refuses models a crash:
//!
//! ```
//! use fle_model::{
//!     drive_scheduled, Action, GateVerdict, LocalStateView, Outcome, Protocol, Response,
//!     SchedulePoint, ScheduledMemory, SharedMemory,
//! };
//! use fle_model::{CollectedViews, InstanceId, Key, Value};
//!
//! struct Open<M>(M, Vec<SchedulePoint>);
//!
//! impl<M: SharedMemory> SharedMemory for Open<M> {
//!     fn propagate(&mut self, entries: Vec<(Key, Value)>) {
//!         self.0.propagate(entries)
//!     }
//!     fn collect(&mut self, instance: InstanceId) -> CollectedViews {
//!         self.0.collect(instance)
//!     }
//!     fn flip(&mut self, prob_one: f64) -> bool {
//!         self.0.flip(prob_one)
//!     }
//!     fn choose(&mut self, choices: &[u64]) -> u64 {
//!         self.0.choose(choices)
//!     }
//! }
//!
//! impl<M: SharedMemory> ScheduledMemory for Open<M> {
//!     fn reach(&mut self, point: SchedulePoint, _state: LocalStateView) -> GateVerdict {
//!         self.1.push(point); // an always-open gate, logging the points
//!         GateVerdict::Proceed
//!     }
//! }
//!
//! struct FlipOnce;
//! impl Protocol for FlipOnce {
//!     fn step(&mut self, response: Response) -> Action {
//!         match response {
//!             Response::Start => Action::Flip { prob_one: 1.0 },
//!             _ => Action::Return(Outcome::Win),
//!         }
//!     }
//!     fn adversary_view(&self) -> LocalStateView {
//!         LocalStateView::new("flip-once", "run")
//!     }
//! }
//!
//! struct Coin;
//! impl SharedMemory for Coin {
//!     fn propagate(&mut self, _entries: Vec<(Key, Value)>) {}
//!     fn collect(&mut self, _instance: InstanceId) -> CollectedViews {
//!         CollectedViews::from_shared(Vec::new())
//!     }
//!     fn flip(&mut self, prob_one: f64) -> bool {
//!         prob_one >= 1.0
//!     }
//!     fn choose(&mut self, _choices: &[u64]) -> u64 {
//!         0
//!     }
//! }
//!
//! let mut gated = Open(Coin, Vec::new());
//! let outcome = drive_scheduled(&mut FlipOnce, &mut gated);
//! assert_eq!(outcome, Some(Outcome::Win));
//! assert_eq!(gated.1, vec![SchedulePoint::Flip, SchedulePoint::Return]);
//! ```

use crate::action::{Action, Outcome};
use crate::backend::{DriveMachine, DriveStep, SharedMemory};
use crate::protocol::{LocalStateView, Protocol};
use std::fmt;

/// The kind of shared-memory operation a processor is about to perform — the
/// granularity at which an external controller may interleave processors.
///
/// One `SchedulePoint` is the concurrent backend's analogue of one
/// schedulable event in the simulator: everything a processor does *between*
/// two points is local computation the adversary cannot subdivide (matching
/// the paper's model, where a step is "a local computation followed by one
/// shared-memory operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePoint {
    /// About to merge register writes into the shared memory.
    Propagate,
    /// About to read register views.
    Collect,
    /// About to flip a coin (visible to the strong adversary afterwards).
    Flip,
    /// About to pick among explicit choices.
    Choose,
    /// About to return from the protocol — gated so the adversary controls
    /// the order in which outcomes become visible (linearizability).
    Return,
}

impl SchedulePoint {
    /// The schedule point at which `action` executes.
    pub fn of(action: &Action) -> SchedulePoint {
        match action {
            Action::Propagate { .. } => SchedulePoint::Propagate,
            Action::Collect { .. } => SchedulePoint::Collect,
            Action::Flip { .. } => SchedulePoint::Flip,
            Action::Choose { .. } => SchedulePoint::Choose,
            Action::Return(_) => SchedulePoint::Return,
        }
    }
}

impl fmt::Display for SchedulePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulePoint::Propagate => "propagate",
            SchedulePoint::Collect => "collect",
            SchedulePoint::Flip => "flip",
            SchedulePoint::Choose => "choose",
            SchedulePoint::Return => "return",
        })
    }
}

/// What the controller tells a processor blocked at a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Perform the announced operation and continue to the next gate.
    Proceed,
    /// Stop immediately without performing the operation: the adversary
    /// crashed this processor. [`drive_scheduled`] returns `None`.
    Crashed,
}

/// A [`SharedMemory`] whose operations pass through an external schedule
/// gate.
///
/// # Contract
///
/// * [`ScheduledMemory::reach`] is called exactly once before each
///   shared-memory operation (and once before returning), with the point the
///   processor is about to execute and a fresh [`LocalStateView`] snapshot —
///   the strong adversary's window into local state, per the paper's model.
/// * `reach` may block for arbitrarily long (an asynchronous system has no
///   speed guarantees); it must eventually return once the controller grants
///   or crashes the processor.
/// * After `GateVerdict::Crashed` the processor must not touch the shared
///   memory again.
pub trait ScheduledMemory: SharedMemory {
    /// Announce that this processor is about to execute `point`, hand the
    /// controller a snapshot of the local state the strong adversary may
    /// inspect, and block until the gate opens.
    fn reach(&mut self, point: SchedulePoint, state: LocalStateView) -> GateVerdict;
}

impl<M: ScheduledMemory + ?Sized> ScheduledMemory for &mut M {
    fn reach(&mut self, point: SchedulePoint, state: LocalStateView) -> GateVerdict {
        (**self).reach(point, state)
    }
}

/// Drive `protocol` against `memory`, passing every action through the
/// schedule gate: the gated twin of [`crate::drive`].
///
/// Returns `Some(outcome)` when the protocol returns normally and `None`
/// when the gate crashed the processor (the processor then simply stops, as
/// a crashed processor does — it never produces an outcome).
pub fn drive_scheduled<P, M>(protocol: &mut P, mut memory: M) -> Option<Outcome>
where
    P: Protocol + ?Sized,
    M: ScheduledMemory,
{
    let mut machine = DriveMachine::new();
    loop {
        let (point, step) = match machine.step(protocol) {
            DriveStep::Done(outcome) => (SchedulePoint::Return, DriveStep::Done(outcome)),
            DriveStep::NeedOp(op) => (op.point(), DriveStep::NeedOp(op)),
        };
        match memory.reach(point, protocol.adversary_view()) {
            GateVerdict::Crashed => return None,
            GateVerdict::Proceed => {}
        }
        match step {
            DriveStep::Done(outcome) => return Some(outcome),
            DriveStep::NeedOp(op) => {
                let response = op.perform(&mut memory);
                machine.resume(response);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Response;
    use crate::ids::{ElectionContext, InstanceId, ProcId, Slot};
    use crate::store::ReplicaStore;
    use crate::value::{Key, Value};
    use crate::view::CollectedViews;

    /// A scripted gate over a single-replica memory: proceeds until the
    /// scripted number of grants runs out, then crashes.
    struct ScriptedGate {
        store: ReplicaStore,
        grants_left: usize,
        points: Vec<SchedulePoint>,
    }

    impl ScriptedGate {
        fn new(grants_left: usize) -> Self {
            ScriptedGate {
                store: ReplicaStore::new(),
                grants_left,
                points: Vec::new(),
            }
        }
    }

    impl SharedMemory for ScriptedGate {
        fn propagate(&mut self, entries: Vec<(Key, Value)>) {
            self.store.apply_all(&entries);
        }

        fn collect(&mut self, instance: InstanceId) -> CollectedViews {
            CollectedViews::from_shared(vec![(ProcId(0), self.store.view_arc(instance))])
        }

        fn flip(&mut self, prob_one: f64) -> bool {
            prob_one >= 0.5
        }

        fn choose(&mut self, choices: &[u64]) -> u64 {
            choices.first().copied().unwrap_or(0)
        }
    }

    impl ScheduledMemory for ScriptedGate {
        fn reach(&mut self, point: SchedulePoint, _state: LocalStateView) -> GateVerdict {
            self.points.push(point);
            if self.grants_left == 0 {
                return GateVerdict::Crashed;
            }
            self.grants_left -= 1;
            GateVerdict::Proceed
        }
    }

    /// Propagate a flag, collect it, flip, return Win iff flag and coin.
    struct RoundTrip {
        stage: u8,
        saw_flag: bool,
    }

    impl Protocol for RoundTrip {
        fn step(&mut self, response: Response) -> Action {
            let instance = InstanceId::door(ElectionContext::Standalone);
            match self.stage {
                0 => {
                    self.stage = 1;
                    Action::Propagate {
                        entries: vec![(Key::global(instance), Value::Flag(true))],
                    }
                }
                1 => {
                    self.stage = 2;
                    Action::Collect { instance }
                }
                2 => {
                    let views = response.expect_views();
                    self.saw_flag = views.responses().iter().any(|(_, view)| {
                        view.get(&Slot::Global).and_then(Value::as_flag) == Some(true)
                    });
                    self.stage = 3;
                    Action::Flip { prob_one: 1.0 }
                }
                _ => {
                    let coin = response.expect_coin();
                    Action::Return(if self.saw_flag && coin {
                        Outcome::Win
                    } else {
                        Outcome::Lose
                    })
                }
            }
        }

        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("round-trip", "test").with_round(u64::from(self.stage))
        }
    }

    #[test]
    fn gated_drive_announces_every_point_in_order() {
        let mut memory = ScriptedGate::new(usize::MAX);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(
            drive_scheduled(&mut protocol, &mut memory),
            Some(Outcome::Win)
        );
        assert_eq!(
            memory.points,
            vec![
                SchedulePoint::Propagate,
                SchedulePoint::Collect,
                SchedulePoint::Flip,
                SchedulePoint::Return,
            ]
        );
    }

    #[test]
    fn a_crash_verdict_stops_the_processor_before_the_operation() {
        // Two grants: propagate and collect run, the flip is refused.
        let mut memory = ScriptedGate::new(2);
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(drive_scheduled(&mut protocol, &mut memory), None);
        // The crash arrived *at* the flip gate: three points announced, the
        // flag round-tripped (stage 2 consumed the collect), no coin flipped.
        assert_eq!(memory.points.len(), 3);
        assert!(protocol.saw_flag);
    }

    #[test]
    fn schedule_points_map_actions_and_display() {
        assert_eq!(
            SchedulePoint::of(&Action::Propagate {
                entries: Vec::new()
            }),
            SchedulePoint::Propagate
        );
        assert_eq!(
            SchedulePoint::of(&Action::Collect {
                instance: InstanceId::Contended
            }),
            SchedulePoint::Collect
        );
        assert_eq!(
            SchedulePoint::of(&Action::Flip { prob_one: 0.5 }),
            SchedulePoint::Flip
        );
        assert_eq!(
            SchedulePoint::of(&Action::Choose { choices: vec![1] }),
            SchedulePoint::Choose
        );
        assert_eq!(
            SchedulePoint::of(&Action::Return(Outcome::Win)),
            SchedulePoint::Return
        );
        assert_eq!(SchedulePoint::Collect.to_string(), "collect");
    }

    #[test]
    fn mutable_references_implement_the_trait() {
        let mut memory = ScriptedGate::new(usize::MAX);
        let by_ref: &mut ScriptedGate = &mut memory;
        let mut protocol = RoundTrip {
            stage: 0,
            saw_flag: false,
        };
        assert_eq!(drive_scheduled(&mut protocol, by_ref), Some(Outcome::Win));
    }

    /// The original gated loop, verbatim, kept as the reference the
    /// machine-based [`drive_scheduled`] is differenced against.
    fn legacy_drive_scheduled<P, M>(protocol: &mut P, mut memory: M) -> Option<Outcome>
    where
        P: Protocol + ?Sized,
        M: ScheduledMemory,
    {
        let mut response = Response::Start;
        loop {
            let action = protocol.step(response);
            let point = SchedulePoint::of(&action);
            match memory.reach(point, protocol.adversary_view()) {
                GateVerdict::Crashed => return None,
                GateVerdict::Proceed => {}
            }
            match action {
                Action::Return(outcome) => return Some(outcome),
                action => {
                    response = memory
                        .perform(action)
                        .expect("only Action::Return yields no response");
                }
            }
        }
    }

    #[test]
    fn machine_gated_drive_is_byte_identical_to_the_legacy_loop() {
        // Across every crash position (0..=5 grants): same verdict, same
        // announced points, same protocol-local state as the original loop.
        for grants in 0..=5usize {
            let mut legacy_memory = ScriptedGate::new(grants);
            let mut legacy_protocol = RoundTrip {
                stage: 0,
                saw_flag: false,
            };
            let legacy_outcome = legacy_drive_scheduled(&mut legacy_protocol, &mut legacy_memory);

            let mut memory = ScriptedGate::new(grants);
            let mut protocol = RoundTrip {
                stage: 0,
                saw_flag: false,
            };
            let outcome = drive_scheduled(&mut protocol, &mut memory);

            assert_eq!(outcome, legacy_outcome, "grants {grants}");
            assert_eq!(memory.points, legacy_memory.points, "grants {grants}");
            assert_eq!(
                protocol.saw_flag, legacy_protocol.saw_flag,
                "grants {grants}"
            );
        }
    }
}
