//! Partition routing for the parallel simulator.
//!
//! The partitioned engine (`fle_sim::partition`) splits the `n` processors of
//! one simulation into contiguous partitions, one engine per partition, and
//! advances them in deterministic *super-rounds*. This module holds the two
//! vocabulary types both sides of that split speak:
//!
//! * [`PartitionMap`] — the pure function from processor id to partition
//!   (balanced contiguous ranges), shared by the engines, the router and the
//!   report merger, and
//! * [`RouteKey`] — the canonical ordering key attached to every message a
//!   partition emits during a round. Message identifiers are assigned at the
//!   round barrier by sorting all partitions' outboxes by this key, and the
//!   key is a pure function of *what triggered the send* — never of which
//!   partition or worker thread produced it — which is what makes the global
//!   message-id sequence (and hence the whole execution) independent of the
//!   partition count in canonical mode and of the thread count always.

use crate::ids::ProcId;

/// The assignment of processors to partitions: balanced contiguous ranges
/// (the first `n % partitions` ranges get one extra processor).
///
/// Contiguity is load-bearing: concatenating the partitions' step logs in
/// partition order *is* ascending-processor order, so the round merger never
/// has to interleave step events across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMap {
    n: usize,
    partitions: usize,
}

impl PartitionMap {
    /// A map of `n` processors over `partitions` partitions (clamped to
    /// `1..=n`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, partitions: usize) -> Self {
        assert!(n > 0, "a system needs at least one processor");
        PartitionMap {
            n,
            partitions: partitions.clamp(1, n),
        }
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of partitions (after clamping).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition owning processor `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn partition_of(&self, p: ProcId) -> usize {
        assert!(p.index() < self.n, "{p} out of range for n={}", self.n);
        let base = self.n / self.partitions;
        let rem = self.n % self.partitions;
        let fat = rem * (base + 1);
        if p.index() < fat {
            p.index() / (base + 1)
        } else {
            rem + (p.index() - fat) / base
        }
    }

    /// The contiguous processor range owned by `partition`.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    pub fn range_of(&self, partition: usize) -> std::ops::Range<usize> {
        assert!(partition < self.partitions, "partition out of range");
        let base = self.n / self.partitions;
        let rem = self.n % self.partitions;
        let lo = partition * base + partition.min(rem);
        let len = base + usize::from(partition < rem);
        lo..lo + len
    }
}

/// The canonical ordering key of one outbound message within a super-round.
///
/// Keys order a round's sends the way the sequential reference engine emits
/// them: first all sends triggered by message deliveries, in ascending order
/// of the *delivered* message id (replies to earlier deliveries come first);
/// then all sends triggered by processor steps, in ascending processor order
/// (a broadcast's targets keep their ascending-target order via `sub`). Both
/// trigger coordinates are globally meaningful and partition-blind, so
/// sorting the union of all outboxes by `RouteKey` yields the same id
/// assignment for every partition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouteKey {
    /// Trigger class: 0 = sent while delivering a message (a reply),
    /// 1 = sent while stepping a processor (a broadcast request).
    pub class: u8,
    /// The trigger coordinate: the delivered message id (class 0) or the
    /// stepping processor's index (class 1).
    pub trigger: u64,
    /// Tie-breaker within one trigger: the send's position in its batch
    /// (ascending-target order for broadcasts; always 0 for replies, which
    /// are single sends).
    pub sub: u32,
}

impl RouteKey {
    /// The key of the (single) reply sent while delivering message
    /// `delivered_id`.
    pub fn reply(delivered_id: u64) -> Self {
        RouteKey {
            class: 0,
            trigger: delivered_id,
            sub: 0,
        }
    }

    /// The key of the `sub`-th send of the broadcast `proc` issued during its
    /// step this round. Sound because a processor can complete at most one
    /// communicate call per round (quorum replies only arrive a round later),
    /// so `(proc, sub)` is unique within the round.
    pub fn broadcast(proc: ProcId, sub: u32) -> Self {
        RouteKey {
            class: 1,
            trigger: proc.index() as u64,
            sub,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_processors() {
        for n in [1usize, 2, 5, 7, 16, 64, 65] {
            for parts in [1usize, 2, 3, 4, 7, 64, 100] {
                let map = PartitionMap::new(n, parts);
                assert!(map.partitions() >= 1 && map.partitions() <= n);
                let mut covered = 0;
                for part in 0..map.partitions() {
                    let range = map.range_of(part);
                    assert_eq!(range.start, covered, "ranges are contiguous");
                    assert!(!range.is_empty(), "no empty partitions");
                    for i in range.clone() {
                        assert_eq!(map.partition_of(ProcId(i)), part);
                    }
                    covered = range.end;
                }
                assert_eq!(covered, n, "ranges cover every processor");
            }
        }
    }

    #[test]
    fn balanced_split_differs_by_at_most_one() {
        let map = PartitionMap::new(10, 3);
        let sizes: Vec<usize> = (0..3).map(|part| map.range_of(part).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn route_keys_order_replies_before_broadcasts() {
        let reply_late = RouteKey::reply(900);
        let broadcast_early = RouteKey::broadcast(ProcId(0), 0);
        assert!(reply_late < broadcast_early, "deliveries precede steps");
        assert!(RouteKey::reply(1) < RouteKey::reply(2));
        assert!(RouteKey::broadcast(ProcId(1), 5) < RouteKey::broadcast(ProcId(2), 0));
        assert!(RouteKey::broadcast(ProcId(1), 0) < RouteKey::broadcast(ProcId(1), 1));
    }
}
