//! Wire messages exchanged between processors.
//!
//! Both backends (the simulator and the threaded runtime) implement the
//! `communicate` primitive of ABND95 with the same four message kinds: a
//! propagate and its acknowledgement, and a collect and its reply. Message
//! complexity is counted per [`WireMessage`] sent, which matches the paper's
//! accounting (a communicate call costs `n` requests plus up to `n` replies,
//! i.e. `O(n)` messages).

use crate::ids::InstanceId;
use crate::value::{Key, Value};
use crate::view::View;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sequence number identifying one `communicate` call of one processor.
pub type CallSeq = u64;

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// `(propagate, v)` — the sender asks the recipient to merge `entries`
    /// into its replica and acknowledge.
    Propagate {
        /// Sequence number of the communicate call this belongs to.
        seq: CallSeq,
        /// Register writes to merge into the recipient's replica.
        entries: Vec<(Key, Value)>,
    },
    /// Acknowledgement of a `Propagate`.
    Ack {
        /// Sequence number being acknowledged.
        seq: CallSeq,
    },
    /// `(collect, instance)` — the sender asks for the recipient's view.
    Collect {
        /// Sequence number of the communicate call this belongs to.
        seq: CallSeq,
        /// The register array whose view is requested.
        instance: InstanceId,
    },
    /// Reply to a `Collect` carrying the responder's view.
    CollectReply {
        /// Sequence number being answered.
        seq: CallSeq,
        /// The responder's current view of the requested instance.
        view: View,
    },
}

impl WireMessage {
    /// The sequence number of the communicate call this message belongs to.
    pub fn seq(&self) -> CallSeq {
        match self {
            WireMessage::Propagate { seq, .. }
            | WireMessage::Ack { seq }
            | WireMessage::Collect { seq, .. }
            | WireMessage::CollectReply { seq, .. } => *seq,
        }
    }

    /// Whether this is a request (sent by the caller of `communicate`).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            WireMessage::Propagate { .. } | WireMessage::Collect { .. }
        )
    }

    /// Whether this is a reply (ack or collect reply).
    pub fn is_reply(&self) -> bool {
        !self.is_request()
    }
}

impl fmt::Display for WireMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireMessage::Propagate { seq, entries } => {
                write!(f, "propagate#{seq}({} entries)", entries.len())
            }
            WireMessage::Ack { seq } => write!(f, "ack#{seq}"),
            WireMessage::Collect { seq, instance } => write!(f, "collect#{seq}({instance})"),
            WireMessage::CollectReply { seq, view } => {
                write!(f, "collect-reply#{seq}({} entries)", view.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ElectionContext;

    #[test]
    fn request_reply_classification() {
        let p = WireMessage::Propagate {
            seq: 1,
            entries: vec![],
        };
        let a = WireMessage::Ack { seq: 1 };
        let c = WireMessage::Collect {
            seq: 2,
            instance: InstanceId::door(ElectionContext::Standalone),
        };
        let r = WireMessage::CollectReply {
            seq: 2,
            view: View::new(),
        };
        assert!(p.is_request() && c.is_request());
        assert!(a.is_reply() && r.is_reply());
        assert_eq!(p.seq(), 1);
        assert_eq!(r.seq(), 2);
    }

    #[test]
    fn display_includes_sequence_numbers() {
        let msg = WireMessage::Ack { seq: 17 };
        assert_eq!(msg.to_string(), "ack#17");
    }
}
