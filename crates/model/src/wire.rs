//! Wire messages exchanged between processors.
//!
//! Both backends (the simulator and the threaded runtime) implement the
//! `communicate` primitive of ABND95 with the same four message kinds: a
//! propagate and its acknowledgement, and a collect and its reply. Message
//! complexity is counted per [`WireMessage`] sent, which matches the paper's
//! accounting (a communicate call costs `n` requests plus up to `n` replies,
//! i.e. `O(n)` messages) — the accounting counts messages, not bytes, so the
//! in-memory payload representation is free to be optimized:
//!
//! * [`WireMessage::Propagate`] carries its register writes behind an
//!   `Arc<[(Key, Value)]>` built **once** per communicate call and
//!   refcount-shared across all `n − 1` sends, so broadcasting is O(1) per
//!   recipient instead of one entry-list clone each.
//! * [`WireMessage::Collect`] carries the requester's `known` version of the
//!   responder's view, and the responder answers with a [`ViewTransfer`]:
//!   either a copy-on-write snapshot of its whole view (O(1) to produce) or
//!   a delta containing only the entries written since `known`.

use crate::ids::{InstanceId, Slot};
use crate::value::{Key, Value};
use crate::view::View;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Sequence number identifying one `communicate` call of one processor.
pub type CallSeq = u64;

/// The payload of a collect reply: the responder's view, either whole or as
/// the entries written since the version the requester already holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewTransfer {
    /// The responder's complete view. A copy-on-write snapshot: producing it
    /// is a refcount bump, and the underlying slot array is only copied if
    /// the responder keeps writing while the snapshot is alive.
    Full(Arc<View>),
    /// The entries whose last effective write is newer than `since`
    /// (a version the requester reported in its [`WireMessage::Collect`]).
    /// Merging them into the requester's copy of the responder's view at
    /// `since` reconstructs the responder's view at `version` exactly,
    /// because values are join-semilattices (later values absorb earlier
    /// ones).
    Delta {
        /// The responder-local version the delta starts from.
        since: u64,
        /// The responder-local version the delta brings the requester to.
        version: u64,
        /// The changed entries, in slot order.
        entries: Arc<[(Slot, Value)]>,
    },
}

impl ViewTransfer {
    /// The responder-local view version this transfer represents.
    pub fn version(&self) -> u64 {
        match self {
            ViewTransfer::Full(view) => view.version(),
            ViewTransfer::Delta { version, .. } => *version,
        }
    }

    /// The full view, panicking on a delta.
    ///
    /// # Panics
    /// Panics when the transfer is a delta. Used by the retained clone
    /// payload path, which never produces deltas.
    pub fn expect_full(self) -> Arc<View> {
        match self {
            ViewTransfer::Full(view) => view,
            ViewTransfer::Delta { since, version, .. } => panic!(
                "expected a full view transfer, got a delta ({since} → {version}); \
                 delta replies require the shared payload path on both endpoints"
            ),
        }
    }
}

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// `(propagate, v)` — the sender asks the recipient to merge `entries`
    /// into its replica and acknowledge.
    Propagate {
        /// Sequence number of the communicate call this belongs to.
        seq: CallSeq,
        /// Register writes to merge into the recipient's replica. Shared by
        /// every send of the same broadcast.
        entries: Arc<[(Key, Value)]>,
    },
    /// Acknowledgement of a `Propagate`.
    Ack {
        /// Sequence number being acknowledged.
        seq: CallSeq,
    },
    /// `(collect, instance)` — the sender asks for the recipient's view.
    Collect {
        /// Sequence number of the communicate call this belongs to.
        seq: CallSeq,
        /// The register array whose view is requested.
        instance: InstanceId,
        /// The responder-local view version the requester already holds for
        /// this responder and instance (0 when it holds nothing), from a
        /// previous reply. The responder may answer with only the entries
        /// written since.
        known: u64,
    },
    /// Reply to a `Collect` carrying the responder's view.
    CollectReply {
        /// Sequence number being answered.
        seq: CallSeq,
        /// The responder's current view of the requested instance, whole or
        /// as a delta against `known`.
        view: ViewTransfer,
    },
}

impl WireMessage {
    /// The sequence number of the communicate call this message belongs to.
    pub fn seq(&self) -> CallSeq {
        match self {
            WireMessage::Propagate { seq, .. }
            | WireMessage::Ack { seq }
            | WireMessage::Collect { seq, .. }
            | WireMessage::CollectReply { seq, .. } => *seq,
        }
    }

    /// Whether this is a request (sent by the caller of `communicate`).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            WireMessage::Propagate { .. } | WireMessage::Collect { .. }
        )
    }

    /// Whether this is a reply (ack or collect reply).
    pub fn is_reply(&self) -> bool {
        !self.is_request()
    }
}

impl fmt::Display for WireMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireMessage::Propagate { seq, entries } => {
                write!(f, "propagate#{seq}({} entries)", entries.len())
            }
            WireMessage::Ack { seq } => write!(f, "ack#{seq}"),
            WireMessage::Collect {
                seq,
                instance,
                known,
            } => write!(f, "collect#{seq}({instance}, known={known})"),
            WireMessage::CollectReply { seq, view } => match view {
                ViewTransfer::Full(view) => {
                    write!(f, "collect-reply#{seq}(full, {} entries)", view.len())
                }
                ViewTransfer::Delta {
                    since,
                    version,
                    entries,
                } => write!(
                    f,
                    "collect-reply#{seq}(delta {since}→{version}, {} entries)",
                    entries.len()
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ElectionContext;

    #[test]
    fn request_reply_classification() {
        let p = WireMessage::Propagate {
            seq: 1,
            entries: Vec::new().into(),
        };
        let a = WireMessage::Ack { seq: 1 };
        let c = WireMessage::Collect {
            seq: 2,
            instance: InstanceId::door(ElectionContext::Standalone),
            known: 0,
        };
        let r = WireMessage::CollectReply {
            seq: 2,
            view: ViewTransfer::Full(Arc::new(View::new())),
        };
        assert!(p.is_request() && c.is_request());
        assert!(a.is_reply() && r.is_reply());
        assert_eq!(p.seq(), 1);
        assert_eq!(r.seq(), 2);
    }

    #[test]
    fn display_includes_sequence_numbers() {
        let msg = WireMessage::Ack { seq: 17 };
        assert_eq!(msg.to_string(), "ack#17");
        let reply = WireMessage::CollectReply {
            seq: 4,
            view: ViewTransfer::Delta {
                since: 2,
                version: 5,
                entries: Vec::new().into(),
            },
        };
        assert_eq!(reply.to_string(), "collect-reply#4(delta 2→5, 0 entries)");
    }

    #[test]
    fn shared_broadcast_payload_is_refcounted_not_copied() {
        use crate::ids::ProcId;
        let entries: Arc<[(Key, Value)]> = vec![(
            Key::proc(InstanceId::Contended, ProcId(0)),
            Value::Flag(true),
        )]
        .into();
        let sends: Vec<WireMessage> = (0..8)
            .map(|i| WireMessage::Propagate {
                seq: i,
                entries: entries.clone(),
            })
            .collect();
        // One shared allocation: the original handle plus all eight sends.
        assert_eq!(Arc::strong_count(&entries), 9);
        drop(sends);
        assert_eq!(Arc::strong_count(&entries), 1);
    }

    #[test]
    fn transfer_version_accessors() {
        let mut view = View::new();
        view.insert(crate::ids::Slot::Global, Value::Flag(true));
        let full = ViewTransfer::Full(Arc::new(view));
        assert_eq!(full.version(), 1);
        assert_eq!(full.expect_full().len(), 1);

        let delta = ViewTransfer::Delta {
            since: 3,
            version: 9,
            entries: vec![(crate::ids::Slot::Global, Value::Flag(true))].into(),
        };
        assert_eq!(delta.version(), 9);
    }
}
