//! Identifiers: processors, register instances, slots and election contexts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The splitmix64 finalizer: mixes a key into a uniformly distributed value.
///
/// Used wherever the workspace needs a *deterministic* hash — shard routing
/// in the concurrent register bank and the service front-end — where the std
/// hasher's documented freedom to change across releases would silently
/// reshuffle placements.
pub fn splitmix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identifier of a processor in the system.
///
/// Processors are numbered `0..n`. The identifier is used both as the address
/// of a node on the network and as the *slot* a processor owns inside
/// single-writer register arrays such as `Status[i]` or `Round[i]`.
///
/// # Example
/// ```
/// use fle_model::ProcId;
/// let p = ProcId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The zero-based index of the processor.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(value: usize) -> Self {
        ProcId(value)
    }
}

/// The election context a register instance belongs to.
///
/// A standalone leader election uses [`ElectionContext::Standalone`]. The
/// renaming algorithm of the paper (Section 4) runs one independent leader
/// election *per name*; those use [`ElectionContext::ForName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ElectionContext {
    /// A single top-level leader election.
    Standalone,
    /// The leader election guarding name `name` in the renaming algorithm.
    ForName(usize),
    /// An election scoped to an arbitrary sub-object, e.g. one node of the
    /// tournament-tree baseline.
    Scoped(u32),
}

impl ElectionContext {
    /// A compact integer encoding used when building [`InstanceId`]s.
    pub fn code(self) -> u32 {
        match self {
            ElectionContext::Standalone => 0,
            ElectionContext::ForName(name) => 1 + 2 * name as u32,
            ElectionContext::Scoped(id) => 2 + 2 * id,
        }
    }

    /// Inverse of [`ElectionContext::code`].
    pub fn from_code(code: u32) -> Self {
        if code == 0 {
            ElectionContext::Standalone
        } else if code % 2 == 1 {
            ElectionContext::ForName(((code - 1) / 2) as usize)
        } else {
            ElectionContext::Scoped((code - 2) / 2)
        }
    }
}

impl fmt::Display for ElectionContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionContext::Standalone => write!(f, "standalone"),
            ElectionContext::ForName(name) => write!(f, "name{name}"),
            ElectionContext::Scoped(id) => write!(f, "scope{id}"),
        }
    }
}

/// Identifier of a replicated register array (an "instance").
///
/// Every processor in the system keeps a local view of every instance and
/// answers `propagate`/`collect` requests for it, exactly as in the
/// `communicate` primitive of ABND95 used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstanceId {
    /// The `Status[n]` array of a (heterogeneous) PoisonPill phase.
    ///
    /// `ctx` identifies the surrounding election, `round` the sifting round.
    Status {
        /// Encoded [`ElectionContext`].
        ctx: u32,
        /// Sifting round number (1-based in the full algorithm).
        round: u32,
    },
    /// The `Round[n]` array used by the `PreRound` procedure (Figure 4).
    Round {
        /// Encoded [`ElectionContext`].
        ctx: u32,
    },
    /// The doorway bit of Figure 5 (a sticky multi-writer boolean).
    Door {
        /// Encoded [`ElectionContext`].
        ctx: u32,
    },
    /// The `Contended[n]` array of the renaming algorithm (Figure 3).
    Contended,
    /// Registers used by the tournament-tree baseline.
    ///
    /// `node` identifies the tournament-tree node, `reg` the register within
    /// the two-processor consensus object at that node.
    Tournament {
        /// Encoded [`ElectionContext`].
        ctx: u32,
        /// Tournament-tree node index (heap order, root = 1).
        node: u32,
        /// Register index within the node.
        reg: u8,
    },
    /// An escape hatch for tests and ad-hoc protocols.
    Custom {
        /// Namespace chosen by the caller.
        ns: u32,
        /// Identifier within the namespace.
        id: u64,
    },
}

impl InstanceId {
    /// Status array of round `round` for election `ctx`.
    pub fn status(ctx: ElectionContext, round: u32) -> Self {
        InstanceId::Status {
            ctx: ctx.code(),
            round,
        }
    }

    /// Round-number array for election `ctx`.
    pub fn round(ctx: ElectionContext) -> Self {
        InstanceId::Round { ctx: ctx.code() }
    }

    /// Doorway flag for election `ctx`.
    pub fn door(ctx: ElectionContext) -> Self {
        InstanceId::Door { ctx: ctx.code() }
    }

    /// Register `reg` of tournament node `node` for election `ctx`.
    pub fn tournament(ctx: ElectionContext, node: u32, reg: u8) -> Self {
        InstanceId::Tournament {
            ctx: ctx.code(),
            node,
            reg,
        }
    }

    /// A custom instance (tests, ad-hoc protocols).
    pub fn custom(ns: u32, id: u64) -> Self {
        InstanceId::Custom { ns, id }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceId::Status { ctx, round } => write!(f, "status[ctx={ctx},r={round}]"),
            InstanceId::Round { ctx } => write!(f, "round[ctx={ctx}]"),
            InstanceId::Door { ctx } => write!(f, "door[ctx={ctx}]"),
            InstanceId::Contended => write!(f, "contended"),
            InstanceId::Tournament { ctx, node, reg } => {
                write!(f, "tournament[ctx={ctx},node={node},reg={reg}]")
            }
            InstanceId::Custom { ns, id } => write!(f, "custom[{ns}:{id}]"),
        }
    }
}

/// The slot of a register within an instance.
///
/// Single-writer arrays such as `Status[n]` use [`Slot::Proc`]; the renaming
/// algorithm's `Contended[n]` array is indexed by name ([`Slot::Name`]);
/// multi-writer scalars such as the doorway bit use [`Slot::Global`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// The slot owned by a processor.
    Proc(ProcId),
    /// The slot associated with a name (renaming).
    Name(usize),
    /// A single shared slot.
    Global,
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Proc(p) => write!(f, "{p}"),
            Slot::Name(u) => write!(f, "name{u}"),
            Slot::Global => write!(f, "global"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_roundtrip_and_display() {
        let p: ProcId = 7usize.into();
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn election_context_code_roundtrip() {
        for ctx in [
            ElectionContext::Standalone,
            ElectionContext::ForName(0),
            ElectionContext::ForName(17),
            ElectionContext::Scoped(0),
            ElectionContext::Scoped(31),
        ] {
            assert_eq!(ElectionContext::from_code(ctx.code()), ctx);
        }
        // Codes never collide across variants.
        let codes: std::collections::BTreeSet<u32> = [
            ElectionContext::Standalone,
            ElectionContext::ForName(0),
            ElectionContext::ForName(1),
            ElectionContext::Scoped(0),
            ElectionContext::Scoped(1),
        ]
        .into_iter()
        .map(ElectionContext::code)
        .collect();
        assert_eq!(codes.len(), 5);
    }

    #[test]
    fn instance_ids_are_distinct() {
        let a = InstanceId::status(ElectionContext::Standalone, 1);
        let b = InstanceId::status(ElectionContext::Standalone, 2);
        let c = InstanceId::status(ElectionContext::ForName(0), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn instance_display_is_informative() {
        let id = InstanceId::tournament(ElectionContext::Standalone, 3, 1);
        assert!(id.to_string().contains("tournament"));
        assert!(id.to_string().contains("node=3"));
    }

    #[test]
    fn slots_order_consistently() {
        let mut slots = [Slot::Global, Slot::Proc(ProcId(1)), Slot::Name(0)];
        slots.sort();
        // Ordering is only required to be total and stable.
        assert_eq!(slots.len(), 3);
    }
}
