//! The protocol state-machine interface and the adversary's window into it.

use crate::action::{Action, Response};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a *strong adaptive adversary* may observe about a processor's local
/// state.
///
/// The paper's adversary "can examine local state, including random coin
/// flips, and crash `t < n/2` of the participants at any point". Concrete
/// adversaries in `fle-sim` receive one `LocalStateView` per processor and
/// schedule steps, deliveries and crashes based on them — this is how the
/// coin-inspecting strategy of Section 3.2 (run all 0-flippers to completion
/// before any 1-flipper) is expressed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalStateView {
    /// Name of the algorithm ("poison-pill", "leader-elect", ...).
    pub algorithm: &'static str,
    /// Name of the phase within the algorithm ("committed", "flipped", ...).
    pub phase: &'static str,
    /// Current sifting round, when meaningful.
    pub round: u64,
    /// The most recent coin flip, if one has been made and not yet consumed.
    pub coin: Option<bool>,
    /// Additional labelled integers an adversary may want to inspect
    /// (e.g. the size of the observed participant list `ℓ`).
    pub details: Vec<(&'static str, i64)>,
}

impl LocalStateView {
    /// A view with the given algorithm and phase labels and no extra detail.
    pub fn new(algorithm: &'static str, phase: &'static str) -> Self {
        LocalStateView {
            algorithm,
            phase,
            round: 0,
            coin: None,
            details: Vec::new(),
        }
    }

    /// Attach the current round.
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// Attach the latest coin flip.
    #[must_use]
    pub fn with_coin(mut self, coin: Option<bool>) -> Self {
        self.coin = coin;
        self
    }

    /// Attach a labelled detail value.
    #[must_use]
    pub fn with_detail(mut self, label: &'static str, value: i64) -> Self {
        self.details.push((label, value));
        self
    }

    /// Look up a detail by label.
    pub fn detail(&self, label: &str) -> Option<i64> {
        self.details
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, v)| *v)
    }
}

impl fmt::Display for LocalStateView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} r={}", self.algorithm, self.phase, self.round)?;
        if let Some(coin) = self.coin {
            write!(f, " coin={}", u8::from(coin))?;
        }
        Ok(())
    }
}

/// A protocol, written as an explicit state machine.
///
/// Backends drive the machine by calling [`Protocol::step`] with
/// [`Response::Start`] first and then with the response to each emitted
/// [`Action`], until the protocol returns [`Action::Return`].
///
/// Writing algorithms this way keeps them completely independent of the
/// execution substrate: the deterministic adversarial simulator and the
/// real-thread runtime drive the same code. Protocols must be [`Send`] so a
/// backend may migrate a state machine to a worker thread (the partitioned
/// simulator and the threaded runtime both do).
pub trait Protocol: Send {
    /// Advance the state machine with the response to the previous action and
    /// obtain the next action.
    fn step(&mut self, response: Response) -> Action;

    /// The slice of local state a strong adaptive adversary may inspect.
    fn adversary_view(&self) -> LocalStateView;

    /// A short human-readable label used in traces and error messages.
    fn label(&self) -> String {
        self.adversary_view().algorithm.to_string()
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn step(&mut self, response: Response) -> Action {
        (**self).step(response)
    }

    fn adversary_view(&self) -> LocalStateView {
        (**self).adversary_view()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Outcome;

    struct Immediate;

    impl Protocol for Immediate {
        fn step(&mut self, _response: Response) -> Action {
            Action::Return(Outcome::Proceed)
        }

        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("immediate", "done")
                .with_round(2)
                .with_coin(Some(true))
                .with_detail("k", 7)
        }
    }

    #[test]
    fn boxed_protocol_delegates() {
        let mut boxed: Box<dyn Protocol> = Box::new(Immediate);
        assert_eq!(
            boxed.step(Response::Start).outcome(),
            Some(Outcome::Proceed)
        );
        assert_eq!(boxed.label(), "immediate");
        let view = boxed.adversary_view();
        assert_eq!(view.round, 2);
        assert_eq!(view.coin, Some(true));
        assert_eq!(view.detail("k"), Some(7));
        assert_eq!(view.detail("missing"), None);
    }

    #[test]
    fn view_display_mentions_coin() {
        let view = LocalStateView::new("a", "b").with_coin(Some(false));
        assert!(view.to_string().contains("coin=0"));
    }
}
