//! Register values and their merge (join) semantics.
//!
//! The `communicate(propagate, v)` primitive of the paper makes every
//! recipient *update its view* of the propagated register. Because messages
//! may be reordered and duplicated across retransmissions, views are modelled
//! as join-semilattices: every value type has a [`Value::merge`] operation
//! that is commutative, associative and idempotent, so a replica's view does
//! not depend on delivery order. For the single-writer registers used by the
//! algorithms the natural "newer value wins" order coincides with the join.

use crate::ids::{InstanceId, ProcId, Slot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The priority a processor adopts after its coin flip in a PoisonPill phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// The processor flipped 0 and has low priority.
    Low,
    /// The processor flipped 1 and has high priority.
    High,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// The status of a processor within one (heterogeneous) PoisonPill phase.
///
/// This is the value stored in the `Status[n]` array of Figures 1 and 2 of the
/// paper: a processor first *commits* (takes the poison pill), then flips a
/// coin and adopts a [`Priority`], optionally carrying the participant list
/// `ℓ` it observed (heterogeneous variant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Status {
    /// `Commit`: committed to flipping a coin, outcome not yet visible.
    Commit,
    /// A resolved priority together with the observed participant list `ℓ`
    /// (empty for the non-heterogeneous PoisonPill of Figure 1).
    Resolved {
        /// The priority adopted after the coin flip.
        priority: Priority,
        /// The participant list `ℓ` recorded before the flip (Figure 2,
        /// line 17). Sorted and deduplicated.
        list: Vec<ProcId>,
    },
}

impl Status {
    /// A resolved status without a participant list (plain PoisonPill).
    pub fn resolved(priority: Priority) -> Self {
        Status::Resolved {
            priority,
            list: Vec::new(),
        }
    }

    /// A resolved status carrying the observed participant list `ℓ`.
    pub fn resolved_with_list(priority: Priority, mut list: Vec<ProcId>) -> Self {
        list.sort_unstable();
        list.dedup();
        Status::Resolved { priority, list }
    }

    /// The priority, if the status is resolved.
    pub fn priority(&self) -> Option<Priority> {
        match self {
            Status::Commit => None,
            Status::Resolved { priority, .. } => Some(*priority),
        }
    }

    /// The participant list `ℓ`, if the status is resolved.
    pub fn list(&self) -> &[ProcId] {
        match self {
            Status::Commit => &[],
            Status::Resolved { list, .. } => list,
        }
    }

    /// Progress rank used by the merge order: `Commit < Resolved`.
    fn rank(&self) -> u8 {
        match self {
            Status::Commit => 0,
            Status::Resolved { .. } => 1,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Commit => write!(f, "commit"),
            Status::Resolved { priority, list } => {
                write!(f, "{priority}(|l|={})", list.len())
            }
        }
    }
}

/// A value stored in a replicated register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// A PoisonPill status (single writer: the owning processor).
    Status(Status),
    /// A round number (single writer, monotonically increasing).
    Round(u32),
    /// A sticky boolean flag (multi-writer: doorway bit, contended-name bit).
    Flag(bool),
    /// A small integer register (used by the tournament baseline; merge keeps
    /// the maximum, which is what the monotone protocols there need).
    Int(i64),
    /// A set of processors (merge takes the union).
    ProcSet(Vec<ProcId>),
}

impl Value {
    /// Merge `other` into `self`.
    ///
    /// The merge is a join: commutative, associative, idempotent. Mixed-type
    /// merges keep `self` unchanged (they cannot arise in the protocols, but
    /// the replica store must not panic on malformed input).
    pub fn merge(&mut self, other: &Value) {
        match (self, other) {
            // Commit < Resolved; between two Resolved values (which only a
            // faulty writer could produce with different contents) prefer
            // the larger one in the derived order for determinism.
            (Value::Status(a), Value::Status(b))
                if b.rank() > a.rank() || (b.rank() == a.rank() && *b > *a) =>
            {
                *a = b.clone();
            }
            (Value::Round(a), Value::Round(b)) => *a = (*a).max(*b),
            (Value::Flag(a), Value::Flag(b)) => *a = *a || *b,
            (Value::Int(a), Value::Int(b)) => *a = (*a).max(*b),
            (Value::ProcSet(a), Value::ProcSet(b)) => {
                a.extend_from_slice(b);
                a.sort_unstable();
                a.dedup();
            }
            _ => {}
        }
    }

    /// Convenience accessor: the status if this is a status value.
    pub fn as_status(&self) -> Option<&Status> {
        match self {
            Value::Status(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: the round number if this is a round value.
    pub fn as_round(&self) -> Option<u32> {
        match self {
            Value::Round(r) => Some(*r),
            _ => None,
        }
    }

    /// Convenience accessor: the boolean if this is a flag.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            Value::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor: the integer if this is an int register.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Status(s) => write!(f, "{s}"),
            Value::Round(r) => write!(f, "round={r}"),
            Value::Flag(b) => write!(f, "flag={b}"),
            Value::Int(v) => write!(f, "int={v}"),
            Value::ProcSet(ps) => write!(f, "set(|{}|)", ps.len()),
        }
    }
}

/// A fully-qualified register name: instance plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key {
    /// The register array this key belongs to.
    pub instance: InstanceId,
    /// The slot within the array.
    pub slot: Slot,
}

impl Key {
    /// Create a key from an instance and slot.
    pub fn new(instance: InstanceId, slot: Slot) -> Self {
        Key { instance, slot }
    }

    /// Key of the slot owned by processor `p` in `instance`.
    pub fn proc(instance: InstanceId, p: ProcId) -> Self {
        Key::new(instance, Slot::Proc(p))
    }

    /// Key of the slot for name `name` in `instance`.
    pub fn name(instance: InstanceId, name: usize) -> Self {
        Key::new(instance, Slot::Name(name))
    }

    /// Key of the single global slot of `instance`.
    pub fn global(instance: InstanceId) -> Self {
        Key::new(instance, Slot::Global)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.instance, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_merge_is_monotone() {
        let mut v = Value::Status(Status::Commit);
        v.merge(&Value::Status(Status::resolved(Priority::Low)));
        assert_eq!(
            v.as_status().unwrap().priority(),
            Some(Priority::Low),
            "commit is superseded by a resolved status"
        );
        // Merging an older Commit back in must not regress the view.
        v.merge(&Value::Status(Status::Commit));
        assert_eq!(v.as_status().unwrap().priority(), Some(Priority::Low));
    }

    #[test]
    fn flag_merge_is_sticky_or() {
        let mut v = Value::Flag(false);
        v.merge(&Value::Flag(false));
        assert_eq!(v.as_flag(), Some(false));
        v.merge(&Value::Flag(true));
        assert_eq!(v.as_flag(), Some(true));
        v.merge(&Value::Flag(false));
        assert_eq!(v.as_flag(), Some(true), "true is sticky");
    }

    #[test]
    fn round_merge_takes_max() {
        let mut v = Value::Round(3);
        v.merge(&Value::Round(1));
        assert_eq!(v.as_round(), Some(3));
        v.merge(&Value::Round(9));
        assert_eq!(v.as_round(), Some(9));
    }

    #[test]
    fn proc_set_merge_is_union() {
        let mut v = Value::ProcSet(vec![ProcId(1), ProcId(3)]);
        v.merge(&Value::ProcSet(vec![ProcId(2), ProcId(3)]));
        assert_eq!(
            v,
            Value::ProcSet(vec![ProcId(1), ProcId(2), ProcId(3)]),
            "union, sorted, deduplicated"
        );
    }

    #[test]
    fn mismatched_merge_keeps_self() {
        let mut v = Value::Round(4);
        v.merge(&Value::Flag(true));
        assert_eq!(v.as_round(), Some(4));
    }

    #[test]
    fn resolved_list_is_sorted_and_deduped() {
        let s = Status::resolved_with_list(Priority::High, vec![ProcId(5), ProcId(1), ProcId(5)]);
        assert_eq!(s.list(), &[ProcId(1), ProcId(5)]);
    }

    #[test]
    fn merge_is_commutative_on_statuses() {
        let a = Value::Status(Status::resolved_with_list(Priority::High, vec![ProcId(0)]));
        let b = Value::Status(Status::Commit);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
