//! Register values and their merge (join) semantics.
//!
//! The `communicate(propagate, v)` primitive of the paper makes every
//! recipient *update its view* of the propagated register. Because messages
//! may be reordered and duplicated across retransmissions, views are modelled
//! as join-semilattices: every value type has a [`Value::merge`] operation
//! that is commutative, associative and idempotent, so a replica's view does
//! not depend on delivery order. For the single-writer registers used by the
//! algorithms the natural "newer value wins" order coincides with the join.
//!
//! # Cost model
//!
//! Values are cloned on every propagate delivery and inside every view
//! transfer, so cloning must not scale with the value's logical size:
//!
//! * [`ProcSet`] keeps up to [`ProcSet::INLINE_CAPACITY`] processors inline
//!   (no heap allocation at all) and spills larger sets into an
//!   `Arc<[ProcId]>`, making `clone` a refcount bump instead of an O(set)
//!   copy. The participant lists `ℓ` carried by heterogeneous PoisonPill
//!   statuses — the largest values in the system, up to `k` entries — are
//!   stored this way.
//! * [`Value::merge`] reports whether the merge actually changed the value,
//!   which the versioned [`crate::View`] uses to stamp modified slots for
//!   delta collect replies.

use crate::ids::{InstanceId, ProcId, Slot};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The priority a processor adopts after its coin flip in a PoisonPill phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// The processor flipped 0 and has low priority.
    Low,
    /// The processor flipped 1 and has high priority.
    High,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// Number of processors a [`ProcSet`] stores without touching the heap.
/// Deliberately small: it bounds `size_of::<Value>()` — and with it the cost
/// of every view-cell copy — while still keeping the empty and singleton
/// sets (the overwhelmingly common cases) allocation-free.
const PROC_SET_INLINE: usize = 2;

/// A sorted, deduplicated set of processors with small-set inline storage.
///
/// Sets of up to [`ProcSet::INLINE_CAPACITY`] processors live entirely inside
/// the value (cloning is a memcpy); larger sets are stored behind an
/// `Arc<[ProcId]>` so cloning is a refcount bump either way. The contents are
/// always sorted ascending and free of duplicates, and the comparison order
/// is the lexicographic slice order (identical to the `Vec<ProcId>` order the
/// merge tie-break historically used).
#[derive(Clone, Serialize, Deserialize)]
pub struct ProcSet(Repr);

#[derive(Clone, Serialize, Deserialize)]
enum Repr {
    /// `items[..len]` holds the sorted members.
    Inline {
        /// Number of live entries in `items`.
        len: u8,
        /// Inline storage; entries at `len..` are padding.
        items: [ProcId; PROC_SET_INLINE],
    },
    /// Sorted members shared behind a refcount (always `> INLINE_CAPACITY`
    /// when built through the public constructors).
    Shared(Arc<[ProcId]>),
}

impl ProcSet {
    /// Number of processors stored without any heap allocation.
    pub const INLINE_CAPACITY: usize = PROC_SET_INLINE;

    /// The empty set.
    pub fn new() -> Self {
        ProcSet(Repr::Inline {
            len: 0,
            items: [ProcId(0); PROC_SET_INLINE],
        })
    }

    /// Build a set from arbitrary members (sorted and deduplicated here).
    pub fn from_vec(mut members: Vec<ProcId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Self::from_sorted_vec(members)
    }

    /// `members` must already be sorted ascending with no duplicates.
    fn from_sorted_vec(members: Vec<ProcId>) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        if members.len() <= PROC_SET_INLINE {
            let mut items = [ProcId(0); PROC_SET_INLINE];
            items[..members.len()].copy_from_slice(&members);
            ProcSet(Repr::Inline {
                len: members.len() as u8,
                items,
            })
        } else {
            ProcSet(Repr::Shared(members.into()))
        }
    }

    /// The members, sorted ascending.
    pub fn as_slice(&self) -> &[ProcId] {
        match &self.0 {
            Repr::Inline { len, items } => &items[..*len as usize],
            Repr::Shared(items) => items,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `p` is a member (binary search).
    pub fn contains(&self, p: ProcId) -> bool {
        self.as_slice().binary_search(&p).is_ok()
    }

    /// Iterate over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.as_slice().iter().copied()
    }

    /// Whether the set has spilled out of the inline storage.
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, Repr::Shared(_))
    }

    /// Union `other` into `self`; returns whether `self` changed.
    ///
    /// Unchanged unions (in particular the idempotent `a ∪ a`) are detected
    /// without allocating; a changed union builds the merged set once.
    pub fn union_with(&mut self, other: &ProcSet) -> bool {
        let a = self.as_slice();
        let b = other.as_slice();
        if b.iter().all(|p| a.binary_search(p).is_ok()) {
            return false;
        }
        if a.is_empty() {
            *self = other.clone();
            return true;
        }
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        *self = Self::from_sorted_vec(merged);
        true
    }
}

impl Default for ProcSet {
    fn default() -> Self {
        ProcSet::new()
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.as_slice()).finish()
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ProcSet {}

impl PartialOrd for ProcSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProcSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for ProcSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<ProcId>> for ProcSet {
    fn from(members: Vec<ProcId>) -> Self {
        ProcSet::from_vec(members)
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<T: IntoIterator<Item = ProcId>>(iter: T) -> Self {
        ProcSet::from_vec(iter.into_iter().collect())
    }
}

/// The status of a processor within one (heterogeneous) PoisonPill phase.
///
/// This is the value stored in the `Status[n]` array of Figures 1 and 2 of the
/// paper: a processor first *commits* (takes the poison pill), then flips a
/// coin and adopts a [`Priority`], optionally carrying the participant list
/// `ℓ` it observed (heterogeneous variant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Status {
    /// `Commit`: committed to flipping a coin, outcome not yet visible.
    Commit,
    /// A resolved priority together with the observed participant list `ℓ`
    /// (empty for the non-heterogeneous PoisonPill of Figure 1).
    Resolved {
        /// The priority adopted after the coin flip.
        priority: Priority,
        /// The participant list `ℓ` recorded before the flip (Figure 2,
        /// line 17). Sorted and deduplicated; cloning is O(1) for spilled
        /// lists, so propagating a status to `n − 1` recipients never copies
        /// `ℓ` more than once.
        list: ProcSet,
    },
}

impl Status {
    /// A resolved status without a participant list (plain PoisonPill).
    pub fn resolved(priority: Priority) -> Self {
        Status::Resolved {
            priority,
            list: ProcSet::new(),
        }
    }

    /// A resolved status carrying the observed participant list `ℓ`.
    pub fn resolved_with_list(priority: Priority, list: Vec<ProcId>) -> Self {
        Status::Resolved {
            priority,
            list: ProcSet::from_vec(list),
        }
    }

    /// The priority, if the status is resolved.
    pub fn priority(&self) -> Option<Priority> {
        match self {
            Status::Commit => None,
            Status::Resolved { priority, .. } => Some(*priority),
        }
    }

    /// The participant list `ℓ`, if the status is resolved.
    pub fn list(&self) -> &[ProcId] {
        match self {
            Status::Commit => &[],
            Status::Resolved { list, .. } => list.as_slice(),
        }
    }

    /// Progress rank used by the merge order: `Commit < Resolved`.
    fn rank(&self) -> u8 {
        match self {
            Status::Commit => 0,
            Status::Resolved { .. } => 1,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Commit => write!(f, "commit"),
            Status::Resolved { priority, list } => {
                write!(f, "{priority}(|l|={})", list.len())
            }
        }
    }
}

/// A value stored in a replicated register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// A PoisonPill status (single writer: the owning processor).
    Status(Status),
    /// A round number (single writer, monotonically increasing).
    Round(u32),
    /// A sticky boolean flag (multi-writer: doorway bit, contended-name bit).
    Flag(bool),
    /// A small integer register (used by the tournament baseline; merge keeps
    /// the maximum, which is what the monotone protocols there need).
    Int(i64),
    /// A set of processors (merge takes the union).
    ProcSet(ProcSet),
}

impl Value {
    /// A processor-set value from arbitrary members.
    pub fn proc_set(members: impl Into<ProcSet>) -> Self {
        Value::ProcSet(members.into())
    }

    /// Merge `other` into `self`; returns whether `self` changed.
    ///
    /// The merge is a join: commutative, associative, idempotent. Mixed-type
    /// merges keep `self` unchanged (they cannot arise in the protocols, but
    /// the replica store must not panic on malformed input). The returned
    /// flag is exact — `true` iff the merged value differs from the previous
    /// one — because the versioned view relies on it to decide which slots a
    /// delta collect reply must carry.
    pub fn merge(&mut self, other: &Value) -> bool {
        match (self, other) {
            // Commit < Resolved; between two Resolved values (which only a
            // faulty writer could produce with different contents) prefer
            // the larger one in the derived order for determinism.
            (Value::Status(a), Value::Status(b))
                if b.rank() > a.rank() || (b.rank() == a.rank() && *b > *a) =>
            {
                *a = b.clone();
                true
            }
            (Value::Round(a), Value::Round(b)) if *b > *a => {
                *a = *b;
                true
            }
            (Value::Flag(a), Value::Flag(b)) if *b && !*a => {
                *a = true;
                true
            }
            (Value::Int(a), Value::Int(b)) if *b > *a => {
                *a = *b;
                true
            }
            (Value::ProcSet(a), Value::ProcSet(b)) => a.union_with(b),
            _ => false,
        }
    }

    /// Convenience accessor: the status if this is a status value.
    pub fn as_status(&self) -> Option<&Status> {
        match self {
            Value::Status(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: the round number if this is a round value.
    pub fn as_round(&self) -> Option<u32> {
        match self {
            Value::Round(r) => Some(*r),
            _ => None,
        }
    }

    /// Convenience accessor: the boolean if this is a flag.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            Value::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor: the integer if this is an int register.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Status(s) => write!(f, "{s}"),
            Value::Round(r) => write!(f, "round={r}"),
            Value::Flag(b) => write!(f, "flag={b}"),
            Value::Int(v) => write!(f, "int={v}"),
            Value::ProcSet(ps) => write!(f, "set(|{}|)", ps.len()),
        }
    }
}

/// A fully-qualified register name: instance plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key {
    /// The register array this key belongs to.
    pub instance: InstanceId,
    /// The slot within the array.
    pub slot: Slot,
}

impl Key {
    /// Create a key from an instance and slot.
    pub fn new(instance: InstanceId, slot: Slot) -> Self {
        Key { instance, slot }
    }

    /// Key of the slot owned by processor `p` in `instance`.
    pub fn proc(instance: InstanceId, p: ProcId) -> Self {
        Key::new(instance, Slot::Proc(p))
    }

    /// Key of the slot for name `name` in `instance`.
    pub fn name(instance: InstanceId, name: usize) -> Self {
        Key::new(instance, Slot::Name(name))
    }

    /// Key of the single global slot of `instance`.
    pub fn global(instance: InstanceId) -> Self {
        Key::new(instance, Slot::Global)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.instance, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_merge_is_monotone() {
        let mut v = Value::Status(Status::Commit);
        assert!(v.merge(&Value::Status(Status::resolved(Priority::Low))));
        assert_eq!(
            v.as_status().unwrap().priority(),
            Some(Priority::Low),
            "commit is superseded by a resolved status"
        );
        // Merging an older Commit back in must not regress the view.
        assert!(!v.merge(&Value::Status(Status::Commit)));
        assert_eq!(v.as_status().unwrap().priority(), Some(Priority::Low));
    }

    #[test]
    fn flag_merge_is_sticky_or() {
        let mut v = Value::Flag(false);
        assert!(!v.merge(&Value::Flag(false)));
        assert_eq!(v.as_flag(), Some(false));
        assert!(v.merge(&Value::Flag(true)));
        assert_eq!(v.as_flag(), Some(true));
        assert!(!v.merge(&Value::Flag(false)));
        assert_eq!(v.as_flag(), Some(true), "true is sticky");
    }

    #[test]
    fn round_merge_takes_max() {
        let mut v = Value::Round(3);
        assert!(!v.merge(&Value::Round(1)));
        assert_eq!(v.as_round(), Some(3));
        assert!(v.merge(&Value::Round(9)));
        assert_eq!(v.as_round(), Some(9));
    }

    #[test]
    fn proc_set_merge_is_union() {
        let mut v = Value::proc_set(vec![ProcId(1), ProcId(3)]);
        assert!(v.merge(&Value::proc_set(vec![ProcId(2), ProcId(3)])));
        assert_eq!(
            v,
            Value::proc_set(vec![ProcId(1), ProcId(2), ProcId(3)]),
            "union, sorted, deduplicated"
        );
    }

    #[test]
    fn mismatched_merge_keeps_self() {
        let mut v = Value::Round(4);
        assert!(!v.merge(&Value::Flag(true)));
        assert_eq!(v.as_round(), Some(4));
    }

    #[test]
    fn resolved_list_is_sorted_and_deduped() {
        let s = Status::resolved_with_list(Priority::High, vec![ProcId(5), ProcId(1), ProcId(5)]);
        assert_eq!(s.list(), &[ProcId(1), ProcId(5)]);
    }

    #[test]
    fn merge_is_commutative_on_statuses() {
        let a = Value::Status(Status::resolved_with_list(Priority::High, vec![ProcId(0)]));
        let b = Value::Status(Status::Commit);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn proc_set_stays_inline_up_to_capacity_and_spills_past_it() {
        let inline: ProcSet = (0..ProcSet::INLINE_CAPACITY).map(ProcId).collect();
        assert!(!inline.is_spilled());
        assert_eq!(inline.len(), ProcSet::INLINE_CAPACITY);

        let spilled: ProcSet = (0..=ProcSet::INLINE_CAPACITY).map(ProcId).collect();
        assert!(spilled.is_spilled());
        assert_eq!(spilled.len(), ProcSet::INLINE_CAPACITY + 1);
        assert_eq!(
            spilled.as_slice(),
            (0..=ProcSet::INLINE_CAPACITY)
                .map(ProcId)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn proc_set_union_across_the_spill_boundary() {
        // A union landing exactly on the inline boundary stays inline.
        let cap = ProcSet::INLINE_CAPACITY;
        let mut a: ProcSet = (0..cap - 1).map(ProcId).collect();
        let b: ProcSet = [ProcId(100)].into_iter().collect();
        assert!(a.union_with(&b));
        assert_eq!(a.len(), cap);
        assert!(!a.is_spilled());

        // One more distinct member pushes it over the boundary.
        let c: ProcSet = [ProcId(200)].into_iter().collect();
        assert!(a.union_with(&c));
        assert_eq!(a.len(), cap + 1);
        assert!(a.is_spilled());
        assert!(a.contains(ProcId(200)) && a.contains(ProcId(0)));

        // Spilled ∪ subset is detected as unchanged without rebuilding.
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), cap + 1);
    }

    #[test]
    fn proc_set_union_is_idempotent_and_empty_neutral() {
        let mut a: ProcSet = (0..7).map(ProcId).collect();
        let copy = a.clone();
        assert!(!a.union_with(&copy), "a ∪ a must report no change");
        assert_eq!(a, copy);

        assert!(!a.union_with(&ProcSet::new()), "a ∪ ∅ = a");
        let mut empty = ProcSet::new();
        assert!(empty.union_with(&a), "∅ ∪ a = a");
        assert_eq!(empty, a);
        let mut still_empty = ProcSet::new();
        assert!(!still_empty.union_with(&ProcSet::new()));
        assert!(still_empty.is_empty());
    }

    #[test]
    fn proc_set_order_matches_slice_order() {
        let small: ProcSet = [ProcId(1), ProcId(2)].into_iter().collect();
        let large: ProcSet = (0..9).map(ProcId).collect();
        assert_eq!(
            small.cmp(&large),
            small.as_slice().cmp(large.as_slice()),
            "comparison must be the lexicographic slice order regardless of representation"
        );
        assert!(small > large, "lexicographic: [1,2] > [0,1,...]");
    }

    #[test]
    fn mixed_type_merges_never_change_and_never_panic() {
        let values = [
            Value::Status(Status::Commit),
            Value::Round(3),
            Value::Flag(true),
            Value::Int(-2),
            Value::proc_set(vec![ProcId(1)]),
        ];
        for a in &values {
            for b in &values {
                let same_kind = std::mem::discriminant(a) == std::mem::discriminant(b);
                if !same_kind {
                    let mut merged = a.clone();
                    assert!(!merged.merge(b), "mixed merge {a} ∪ {b} must be a no-op");
                    assert_eq!(&merged, a);
                }
            }
        }
    }
}
