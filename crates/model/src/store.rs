//! The per-node replica store backing the `communicate` primitive, plus the
//! requester-side cache that lets collect replies travel as deltas.
//!
//! Every processor — participating or not, returned or not — maintains a view
//! of every replicated register and answers `propagate` and `collect`
//! requests for it. Values are merged with the join semantics of
//! [`crate::Value::merge`], so the store is insensitive to message reordering
//! and duplication.
//!
//! The store is keyed by [`InstanceId`] and keeps one **copy-on-write**
//! [`View`] per instance (`Arc<View>`): answering a collect is a refcount
//! bump ([`ReplicaStore::view_arc`]), and the slot array is only duplicated
//! if the replica keeps absorbing writes while a snapshot is still alive
//! (`Arc::make_mut`). Combined with the per-view version counters this gives
//! the delta path of [`crate::wire::ViewTransfer`]: a responder answers a
//! collect that names a `known` version with just the entries written since.
//! Both execution backends (the simulator and the threaded runtime) share
//! these types.

use crate::ids::{InstanceId, ProcId};
use crate::value::{Key, Value};
use crate::view::View;
use crate::wire::ViewTransfer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A node's local view of all replicated registers.
#[derive(Debug, Clone)]
pub struct ReplicaStore {
    instances: BTreeMap<InstanceId, Arc<View>>,
    /// Shared empty view handed out for instances the node has never heard
    /// about, so collects of unknown instances allocate nothing.
    empty: Arc<View>,
}

impl Default for ReplicaStore {
    fn default() -> Self {
        ReplicaStore {
            instances: BTreeMap::new(),
            empty: Arc::new(View::new()),
        }
    }
}

impl ReplicaStore {
    /// An empty store (every register is `⊥`).
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Merge a propagated write into the store.
    pub fn apply(&mut self, key: Key, value: &Value) {
        let view = self.instances.entry(key.instance).or_default();
        Arc::make_mut(view).insert(key.slot, value.clone());
    }

    /// Merge a batch of propagated writes.
    pub fn apply_all(&mut self, entries: &[(Key, Value)]) {
        for (key, value) in entries {
            self.apply(*key, value);
        }
    }

    /// A copy-on-write snapshot of the node's current view of `instance`:
    /// O(1), shares the slot array until the next write to the instance.
    pub fn view_arc(&self, instance: InstanceId) -> Arc<View> {
        self.instances
            .get(&instance)
            .cloned()
            .unwrap_or_else(|| self.empty.clone())
    }

    /// The node's current view of `instance` as a fully detached copy — the
    /// historical deep-clone path, reproduced faithfully (no storage shared
    /// with the live view). Prefer [`ReplicaStore::view_arc`] on hot paths.
    pub fn view_of(&self, instance: InstanceId) -> View {
        self.instances
            .get(&instance)
            .map(|view| view.detached_clone())
            .unwrap_or_default()
    }

    /// Answer a collect whose requester already holds this node's view of
    /// `instance` at version `known`: a delta with exactly the entries
    /// written since, or a full snapshot when the requester holds nothing
    /// (`known == 0`) or reports a version from the future (malformed input;
    /// the full view is always a correct answer).
    pub fn transfer_since(&self, instance: InstanceId, known: u64) -> ViewTransfer {
        let view = match self.instances.get(&instance) {
            Some(view) => view,
            None => &self.empty,
        };
        let version = view.version();
        if known == 0 || known > version {
            return ViewTransfer::Full(view.clone());
        }
        if known == version {
            // Nothing new: an empty delta, carried by one shared allocation.
            return ViewTransfer::Delta {
                since: known,
                version,
                entries: empty_delta_entries(),
            };
        }
        // Ship a partial delta only when little changed. In this in-process
        // wire a full snapshot is a refcount bump (copy-on-write), so a large
        // delta costs strictly more than a snapshot on both ends — building
        // the entry list here and merging it chunk-by-chunk at the requester.
        // A byte-serialized transport would push this threshold much higher.
        if version - known > DELTA_ENTRY_BUDGET {
            return ViewTransfer::Full(view.clone());
        }
        let entries: Vec<(crate::ids::Slot, Value)> = view
            .delta_since(known)
            .map(|(slot, value)| (slot, value.clone()))
            .collect();
        debug_assert!(
            !entries.is_empty(),
            "the version counter advances exactly when some slot is restamped"
        );
        ViewTransfer::Delta {
            since: known,
            version,
            entries: entries.into(),
        }
    }

    /// The value stored for `key`, if any.
    pub fn get(&self, key: &Key) -> Option<&Value> {
        self.instances.get(&key.instance)?.get(&key.slot)
    }

    /// Number of non-`⊥` registers in the store.
    pub fn len(&self) -> usize {
        self.instances.values().map(|view| view.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget every register (used when recycling a node between trials).
    pub fn clear(&mut self) {
        self.instances.clear();
    }
}

/// One requester-side cache slot: the responder's view as of `version`,
/// valid only while `epoch` matches the cache's current epoch.
#[derive(Debug, Clone, Default)]
struct CacheEntry {
    epoch: u64,
    version: u64,
    view: Option<Arc<View>>,
}

/// Most effective writes a collect reply answers with a partial delta for;
/// past this the responder falls back to a copy-on-write full snapshot
/// (cheaper than a large entry list on an in-process wire).
const DELTA_ENTRY_BUDGET: u64 = 32;

/// The shared empty entry list used by deltas that carry nothing new.
fn empty_delta_entries() -> Arc<[(crate::ids::Slot, Value)]> {
    static EMPTY: std::sync::OnceLock<Arc<[(crate::ids::Slot, Value)]>> =
        std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Vec::new().into()).clone()
}

/// The requester-side state of the delta-collect protocol: for each
/// responder, the most recent view (and its responder-local version) received
/// for the instance currently being collected.
///
/// The cache deliberately tracks **one instance at a time** — the instance of
/// the most recent collect call. Protocols collect an instance a small number
/// of times in a row (commit-collect then status-collect in a sifting phase)
/// and then move on, so a deeper cache would mostly hold dead instances;
/// bounding it to the active instance keeps requester memory at one view per
/// responder while still turning repeat collects into deltas. Collecting a
/// different instance resets every entry to "nothing known" (version 0),
/// which makes responders fall back to full snapshots — always correct.
#[derive(Debug, Default)]
pub struct CollectCache {
    instance: Option<InstanceId>,
    /// Bumped whenever the tracked instance changes; entries from older
    /// epochs are treated as absent (O(1) invalidation of the whole cache —
    /// no per-entry reset loop on the collect hot path).
    epoch: u64,
    entries: Vec<CacheEntry>,
}

impl CollectCache {
    /// An empty cache.
    pub fn new() -> Self {
        CollectCache::default()
    }

    /// Point the cache at `instance` ahead of a collect broadcast to `n`
    /// responders, dropping everything known about any other instance.
    pub fn prepare(&mut self, instance: InstanceId, n: usize) {
        if self.instance != Some(instance) {
            self.instance = Some(instance);
            self.epoch += 1;
        }
        if self.entries.len() < n {
            self.entries.resize(n, CacheEntry::default());
        }
    }

    /// The responder-local version this requester holds for `responder`
    /// (0 when it holds nothing). Sent in the `Collect` request.
    pub fn known(&self, responder: ProcId) -> u64 {
        self.entries
            .get(responder.index())
            .filter(|entry| entry.epoch == self.epoch)
            .map_or(0, |entry| entry.version)
    }

    /// Resolve a reply from `responder` into the responder's full view,
    /// updating the cache: a full transfer replaces the entry, a delta is
    /// merged into the cached copy (in place when the cached `Arc` is no
    /// longer shared).
    ///
    /// # Panics
    /// Panics if a delta arrives whose base version does not match the cache
    /// — the engine guarantees the cache survives untouched between sending
    /// a collect and recording its replies, so a mismatch is a backend bug.
    pub fn resolve(&mut self, responder: ProcId, transfer: ViewTransfer) -> Arc<View> {
        if self.entries.len() <= responder.index() {
            self.entries
                .resize(responder.index() + 1, CacheEntry::default());
        }
        let epoch = self.epoch;
        let entry = &mut self.entries[responder.index()];
        match transfer {
            ViewTransfer::Full(view) => {
                entry.epoch = epoch;
                entry.version = view.version();
                entry.view = Some(view.clone());
                view
            }
            ViewTransfer::Delta {
                since,
                version,
                entries,
            } => {
                assert!(
                    entry.epoch == epoch && entry.version == since,
                    "delta from {responder} starts at version {since} but the \
                     requester's cache is at version {} (epoch {} vs {epoch})",
                    entry.version,
                    entry.epoch,
                );
                // Take the cached handle out so the merge can run in place
                // when nobody else holds it (the usual case: the previous
                // collect's response has been consumed by the protocol).
                let mut view = entry
                    .view
                    .take()
                    .expect("a delta reply implies a previously cached view");
                if !entries.is_empty() {
                    let target = Arc::make_mut(&mut view);
                    for (slot, value) in entries.iter() {
                        target.insert(*slot, value.clone());
                    }
                }
                entry.view = Some(view.clone());
                entry.version = version;
                view
            }
        }
    }

    /// Forget everything (used when recycling a node between trials).
    pub fn clear(&mut self) {
        self.instance = None;
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElectionContext, Slot};
    use crate::value::{Priority, Status};

    #[test]
    fn view_of_filters_by_instance() {
        let mut store = ReplicaStore::new();
        let status1 = InstanceId::status(ElectionContext::Standalone, 1);
        let status2 = InstanceId::status(ElectionContext::Standalone, 2);
        store.apply(
            Key::proc(status1, ProcId(0)),
            &Value::Status(Status::Commit),
        );
        store.apply(
            Key::proc(status2, ProcId(1)),
            &Value::Status(Status::resolved(Priority::High)),
        );
        store.apply(
            Key::global(InstanceId::door(ElectionContext::Standalone)),
            &Value::Flag(true),
        );

        let view = store.view_of(status1);
        assert_eq!(view.len(), 1);
        assert!(view.get(&Slot::Proc(ProcId(0))).is_some());
        assert!(view.get(&Slot::Proc(ProcId(1))).is_none());
    }

    #[test]
    fn apply_merges_rather_than_overwrites() {
        let mut store = ReplicaStore::new();
        let door = InstanceId::door(ElectionContext::Standalone);
        store.apply(Key::global(door), &Value::Flag(true));
        store.apply(Key::global(door), &Value::Flag(false));
        assert_eq!(
            store.get(&Key::global(door)).and_then(Value::as_flag),
            Some(true),
            "the sticky doorway bit never reopens"
        );
    }

    #[test]
    fn apply_all_applies_every_entry() {
        let mut store = ReplicaStore::new();
        let contended = InstanceId::Contended;
        let entries: Vec<(Key, Value)> = (0..4)
            .map(|name| (Key::name(contended, name), Value::Flag(true)))
            .collect();
        store.apply_all(&entries);
        assert_eq!(store.len(), 4);
        assert_eq!(store.view_of(contended).len(), 4);
        assert!(!store.is_empty());
    }

    #[test]
    fn view_of_unknown_instance_is_empty() {
        let store = ReplicaStore::new();
        assert!(store.view_of(InstanceId::Contended).is_empty());
        assert!(store.view_arc(InstanceId::Contended).is_empty());
    }

    #[test]
    fn snapshots_are_copy_on_write() {
        let mut store = ReplicaStore::new();
        let contended = InstanceId::Contended;
        store.apply(Key::name(contended, 0), &Value::Flag(true));
        let snapshot = store.view_arc(contended);
        let alias = store.view_arc(contended);
        assert!(
            Arc::ptr_eq(&snapshot, &alias),
            "snapshots of an unwritten instance share one allocation"
        );
        // A write after the snapshot detaches the live view; the snapshot
        // keeps observing the old state.
        store.apply(Key::name(contended, 1), &Value::Flag(true));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(store.view_arc(contended).len(), 2);
    }

    #[test]
    fn transfer_since_degrades_to_full_and_shrinks_to_delta() {
        let mut store = ReplicaStore::new();
        let contended = InstanceId::Contended;
        store.apply(Key::name(contended, 0), &Value::Flag(true));
        store.apply(Key::name(contended, 1), &Value::Flag(true));
        let version = store.view_arc(contended).version();

        // Unknown requester state: full snapshot.
        assert!(matches!(
            store.transfer_since(contended, 0),
            ViewTransfer::Full(_)
        ));
        // Up-to-date requester: empty delta.
        match store.transfer_since(contended, version) {
            ViewTransfer::Delta {
                since,
                version: v,
                entries,
            } => {
                assert_eq!((since, v), (version, version));
                assert!(entries.is_empty());
            }
            other => panic!("expected an empty delta, got {other:?}"),
        }
        // One more write: the delta carries exactly that entry.
        store.apply(Key::name(contended, 7), &Value::Flag(true));
        match store.transfer_since(contended, version) {
            ViewTransfer::Delta { entries, .. } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].0, Slot::Name(7));
            }
            other => panic!("expected a one-entry delta, got {other:?}"),
        }
        // A version from the future falls back to the full view.
        assert!(matches!(
            store.transfer_since(contended, u64::MAX),
            ViewTransfer::Full(_)
        ));
    }

    #[test]
    fn collect_cache_reconstructs_the_responder_view() {
        let mut responder = ReplicaStore::new();
        let contended = InstanceId::Contended;
        responder.apply(Key::name(contended, 0), &Value::Flag(true));

        let mut cache = CollectCache::new();
        cache.prepare(contended, 4);
        assert_eq!(cache.known(ProcId(2)), 0);

        // First contact: full transfer.
        let full = responder.transfer_since(contended, cache.known(ProcId(2)));
        let first = cache.resolve(ProcId(2), full);
        assert_eq!(*first, responder.view_of(contended));

        // The responder moves on; the next reply is a delta that
        // reconstructs its new view exactly.
        responder.apply(Key::name(contended, 3), &Value::Flag(true));
        cache.prepare(contended, 4);
        let delta = responder.transfer_since(contended, cache.known(ProcId(2)));
        assert!(matches!(&delta, ViewTransfer::Delta { entries, .. } if entries.len() == 1));
        let second = cache.resolve(ProcId(2), delta);
        assert_eq!(*second, responder.view_of(contended));

        // Nothing changed: the empty delta returns the cached view untouched.
        let unchanged = responder.transfer_since(contended, cache.known(ProcId(2)));
        let third = cache.resolve(ProcId(2), unchanged);
        assert!(Arc::ptr_eq(&second, &third));
    }

    #[test]
    fn transfer_crosses_from_delta_to_snapshot_at_the_entry_budget() {
        let mut store = ReplicaStore::new();
        let instance = InstanceId::Contended;
        store.apply(Key::name(instance, 5000), &Value::Flag(true));
        let known = store.view_arc(instance).version();

        // Exactly DELTA_ENTRY_BUDGET effective writes since `known`: still a
        // partial delta carrying every one of them.
        for i in 0..DELTA_ENTRY_BUDGET {
            store.apply(Key::name(instance, i as usize), &Value::Flag(true));
        }
        match store.transfer_since(instance, known) {
            ViewTransfer::Delta { since, entries, .. } => {
                assert_eq!(since, known);
                assert_eq!(entries.len(), DELTA_ENTRY_BUDGET as usize);
            }
            other => panic!("at the budget the reply must still be a delta, got {other:?}"),
        }

        // One more effective write crosses the threshold: the responder
        // falls back to a copy-on-write full snapshot.
        store.apply(
            Key::name(instance, DELTA_ENTRY_BUDGET as usize),
            &Value::Flag(true),
        );
        match store.transfer_since(instance, known) {
            ViewTransfer::Full(view) => {
                assert_eq!(view.len(), DELTA_ENTRY_BUDGET as usize + 2);
            }
            other => panic!("past the budget the reply must be a snapshot, got {other:?}"),
        }

        // Either way the requester reconstructs the same view.
        let mut cache = CollectCache::new();
        cache.prepare(instance, 2);
        let rebuilt = cache.resolve(ProcId(1), store.transfer_since(instance, 0));
        assert_eq!(*rebuilt, store.view_of(instance));
    }

    #[test]
    fn collect_cache_epoch_invalidation_is_constant_time_and_safe() {
        let instance_a = InstanceId::Contended;
        let instance_b = InstanceId::door(ElectionContext::Standalone);
        let responder_id = ProcId(1);
        let mut responder = ReplicaStore::new();
        responder.apply(Key::name(instance_a, 0), &Value::Flag(true));
        responder.apply(Key::name(instance_a, 3), &Value::Flag(true));
        let version_a = responder.view_arc(instance_a).version();

        let mut cache = CollectCache::new();
        cache.prepare(instance_a, 2);
        cache.resolve(
            responder_id,
            responder.transfer_since(instance_a, cache.known(responder_id)),
        );
        assert_eq!(cache.known(responder_id), version_a);

        // Switching instances must invalidate in O(1): the entry is *not*
        // rewritten (it still physically holds the old version and view),
        // only the epoch moves on — which is what makes the entry invisible.
        cache.prepare(instance_b, 2);
        assert_eq!(cache.entries[responder_id.index()].version, version_a);
        assert!(cache.entries[responder_id.index()].view.is_some());
        assert_eq!(cache.known(responder_id), 0, "stale epoch reads as unknown");

        // Switching *back* bumps the epoch again: the version from the
        // first visit must not leak, or the responder would answer with a
        // delta based on state the requester no longer tracks.
        cache.prepare(instance_a, 2);
        assert_eq!(cache.known(responder_id), 0);
        let transfer = responder.transfer_since(instance_a, cache.known(responder_id));
        assert!(
            matches!(transfer, ViewTransfer::Full(_)),
            "a stale-version collect after a switch must get a full snapshot"
        );
        let rebuilt = cache.resolve(responder_id, transfer);
        assert_eq!(*rebuilt, responder.view_of(instance_a));
        assert_eq!(cache.known(responder_id), version_a);
    }

    #[test]
    fn collect_cache_resets_when_the_instance_changes() {
        let mut cache = CollectCache::new();
        cache.prepare(InstanceId::Contended, 2);
        let view: View = [(Slot::Name(0), Value::Flag(true))].into_iter().collect();
        cache.resolve(ProcId(1), ViewTransfer::Full(Arc::new(view)));
        assert_eq!(cache.known(ProcId(1)), 1);

        cache.prepare(InstanceId::door(ElectionContext::Standalone), 2);
        assert_eq!(
            cache.known(ProcId(1)),
            0,
            "switching instances must forget the old versions"
        );
        cache.prepare(InstanceId::door(ElectionContext::Standalone), 2);
    }
}
