//! The per-node replica store backing the `communicate` primitive.
//!
//! Every processor — participating or not, returned or not — maintains a view
//! of every replicated register and answers `propagate` and `collect`
//! requests for it. Values are merged with the join semantics of
//! [`crate::Value::merge`], so the store is insensitive to message reordering
//! and duplication.
//!
//! The store is keyed by [`InstanceId`] and keeps one dense [`View`] per
//! instance, so answering a collect is a single map lookup plus a flat clone
//! of the instance's slot array — no range scans over a global key space.
//! Both execution backends (the simulator and the threaded runtime) share
//! this type.

use crate::ids::InstanceId;
use crate::value::{Key, Value};
use crate::view::View;
use std::collections::BTreeMap;

/// A node's local view of all replicated registers.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStore {
    instances: BTreeMap<InstanceId, View>,
}

impl ReplicaStore {
    /// An empty store (every register is `⊥`).
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Merge a propagated write into the store.
    pub fn apply(&mut self, key: Key, value: &Value) {
        self.instances
            .entry(key.instance)
            .or_default()
            .insert(key.slot, value.clone());
    }

    /// Merge a batch of propagated writes.
    pub fn apply_all(&mut self, entries: &[(Key, Value)]) {
        for (key, value) in entries {
            self.apply(*key, value);
        }
    }

    /// The node's current view of `instance`, as returned in a collect reply.
    pub fn view_of(&self, instance: InstanceId) -> View {
        self.instances.get(&instance).cloned().unwrap_or_default()
    }

    /// The value stored for `key`, if any.
    pub fn get(&self, key: &Key) -> Option<&Value> {
        self.instances.get(&key.instance)?.get(&key.slot)
    }

    /// Number of non-`⊥` registers in the store.
    pub fn len(&self) -> usize {
        self.instances.values().map(View::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElectionContext, ProcId, Slot};
    use crate::value::{Priority, Status};

    #[test]
    fn view_of_filters_by_instance() {
        let mut store = ReplicaStore::new();
        let status1 = InstanceId::status(ElectionContext::Standalone, 1);
        let status2 = InstanceId::status(ElectionContext::Standalone, 2);
        store.apply(
            Key::proc(status1, ProcId(0)),
            &Value::Status(Status::Commit),
        );
        store.apply(
            Key::proc(status2, ProcId(1)),
            &Value::Status(Status::resolved(Priority::High)),
        );
        store.apply(
            Key::global(InstanceId::door(ElectionContext::Standalone)),
            &Value::Flag(true),
        );

        let view = store.view_of(status1);
        assert_eq!(view.len(), 1);
        assert!(view.get(&Slot::Proc(ProcId(0))).is_some());
        assert!(view.get(&Slot::Proc(ProcId(1))).is_none());
    }

    #[test]
    fn apply_merges_rather_than_overwrites() {
        let mut store = ReplicaStore::new();
        let door = InstanceId::door(ElectionContext::Standalone);
        store.apply(Key::global(door), &Value::Flag(true));
        store.apply(Key::global(door), &Value::Flag(false));
        assert_eq!(
            store.get(&Key::global(door)).and_then(Value::as_flag),
            Some(true),
            "the sticky doorway bit never reopens"
        );
    }

    #[test]
    fn apply_all_applies_every_entry() {
        let mut store = ReplicaStore::new();
        let contended = InstanceId::Contended;
        let entries: Vec<(Key, Value)> = (0..4)
            .map(|name| (Key::name(contended, name), Value::Flag(true)))
            .collect();
        store.apply_all(&entries);
        assert_eq!(store.len(), 4);
        assert_eq!(store.view_of(contended).len(), 4);
        assert!(!store.is_empty());
    }

    #[test]
    fn view_of_unknown_instance_is_empty() {
        let store = ReplicaStore::new();
        assert!(store.view_of(InstanceId::Contended).is_empty());
    }
}
