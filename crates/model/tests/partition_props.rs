//! Property tests pinning the [`fle_model::PartitionMap`] contract for
//! arbitrary `(n, partitions)` — in particular the uneven cases where
//! `n % partitions != 0`, which the unit tests only spot-check:
//!
//! * **membership** — `partition_of(p)` agrees with `range_of` for every
//!   processor (each processor is in exactly the range of its partition),
//! * **disjoint + contiguous cover** — the ranges tile `0..n` in partition
//!   order with no gap and no overlap, and
//! * **balance** — range lengths differ by at most one, with the first
//!   `n % partitions` ranges getting the extra processor.
//!
//! These invariants are what the partitioned simulator's round merger and
//! the service's per-shard metrics both lean on: contiguity makes the
//! merged step log ascending, and balance makes per-partition (and
//! per-shard) attribution comparable.

use fle_model::{PartitionMap, ProcId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// `partition_of` and `range_of` are two views of one function:
    /// processor `p` is in `range_of(partition_of(p))`, and every processor
    /// of `range_of(k)` maps back to `k`.
    #[test]
    fn partition_of_and_range_of_agree(n in 1usize..200, partitions in 1usize..40) {
        let map = PartitionMap::new(n, partitions);
        for p in 0..n {
            let owner = map.partition_of(ProcId(p));
            prop_assert!(owner < map.partitions(), "owner index in range");
            prop_assert!(
                map.range_of(owner).contains(&p),
                "processor {p} must lie in its owner's range {:?}",
                map.range_of(owner)
            );
        }
        for k in 0..map.partitions() {
            for p in map.range_of(k) {
                prop_assert_eq!(
                    map.partition_of(ProcId(p)), k,
                    "every processor of range {} maps back to it", k
                );
            }
        }
    }

    /// The ranges tile `0..n` contiguously in partition order: each range
    /// starts where the previous one ended, nothing is skipped, nothing is
    /// covered twice, and the last range ends exactly at `n`.
    #[test]
    fn ranges_are_disjoint_and_cover_contiguously(n in 1usize..200, partitions in 1usize..40) {
        let map = PartitionMap::new(n, partitions);
        let mut next = 0usize;
        for k in 0..map.partitions() {
            let range = map.range_of(k);
            prop_assert_eq!(range.start, next, "range {} starts at the previous end", k);
            prop_assert!(!range.is_empty(), "clamping guarantees nonempty ranges");
            next = range.end;
        }
        prop_assert_eq!(next, n, "the last range ends exactly at n");
    }

    /// Balance: lengths differ by at most one, the first `n % partitions`
    /// ranges carry the extra processor, and the lengths sum to `n`.
    #[test]
    fn range_lengths_are_balanced(n in 1usize..200, partitions in 1usize..40) {
        let map = PartitionMap::new(n, partitions);
        let base = n / map.partitions();
        let rem = n % map.partitions();
        let lengths: Vec<usize> = (0..map.partitions()).map(|k| map.range_of(k).len()).collect();
        for (k, &len) in lengths.iter().enumerate() {
            let expected = base + usize::from(k < rem);
            prop_assert_eq!(len, expected, "range {} length", k);
        }
        let max = lengths.iter().copied().max().unwrap_or(0);
        let min = lengths.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "lengths may differ by at most one");
        prop_assert_eq!(lengths.iter().sum::<usize>(), n);
    }

    /// Requesting more partitions than processors clamps to one processor
    /// per partition rather than manufacturing empty ranges.
    #[test]
    fn overpartitioning_clamps_to_n(n in 1usize..50, extra in 0usize..100) {
        let map = PartitionMap::new(n, n + extra);
        prop_assert_eq!(map.partitions(), n);
        for k in 0..n {
            prop_assert_eq!(map.range_of(k), k..k + 1);
        }
    }
}
