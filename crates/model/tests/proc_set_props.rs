//! Property tests for [`fle_model::ProcSet`] against a `BTreeSet` reference
//! model: representation invariants (inline→spill promotion, sorted-dedup
//! storage) and the semilattice laws of `union_with` (commutativity,
//! idempotence, exact change reporting).

use fle_model::{ProcId, ProcSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Derive a pseudo-random member list from a seed (splitmix64): arbitrary
/// sizes, duplicates included on purpose.
fn members_from(seed: u64, len: usize, span: u64) -> Vec<ProcId> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ProcId(((z ^ (z >> 31)) % span.max(1)) as usize)
        })
        .collect()
}

fn reference(members: &[ProcId]) -> BTreeSet<ProcId> {
    members.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Construction matches the reference model exactly: sorted, deduplicated,
    /// and inline iff the distinct-member count fits the inline capacity.
    #[test]
    fn construction_is_sorted_deduped_and_spills_exactly_past_capacity(
        seed in 0u64..10_000,
        len in 0usize..24,
        span in 1u64..40,
    ) {
        let members = members_from(seed, len, span);
        let set = ProcSet::from_vec(members.clone());
        let model = reference(&members);

        let expected: Vec<ProcId> = model.iter().copied().collect();
        prop_assert_eq!(set.as_slice(), expected.as_slice());
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        prop_assert_eq!(
            set.is_spilled(),
            model.len() > ProcSet::INLINE_CAPACITY,
            "inline→spill promotion must happen exactly past the capacity"
        );
        // The sorted-dedup invariant, restated directly on the storage.
        prop_assert!(set.as_slice().windows(2).all(|w| w[0] < w[1]));
        // Membership agrees with the model over the whole span.
        for probe in 0..span as usize + 2 {
            prop_assert_eq!(set.contains(ProcId(probe)), model.contains(&ProcId(probe)));
        }
    }

    /// `union_with` is the reference-model set union; the change flag is
    /// exact; the union is commutative and idempotent.
    #[test]
    fn union_matches_the_reference_model(
        seed_a in 0u64..10_000,
        seed_b in 10_000u64..20_000,
        len_a in 0usize..16,
        len_b in 0usize..16,
        span in 1u64..24,
    ) {
        let members_a = members_from(seed_a, len_a, span);
        let members_b = members_from(seed_b, len_b, span);
        let a = ProcSet::from_vec(members_a.clone());
        let b = ProcSet::from_vec(members_b.clone());
        let model_a = reference(&members_a);
        let model_b = reference(&members_b);

        // a ∪ b equals the model union, and the change flag is exact.
        let mut ab = a.clone();
        let changed = ab.union_with(&b);
        let model_union: Vec<ProcId> =
            model_a.union(&model_b).copied().collect();
        prop_assert_eq!(ab.as_slice(), model_union.as_slice());
        prop_assert_eq!(
            changed,
            !model_b.is_subset(&model_a),
            "union_with must report a change iff b brought a new member"
        );
        prop_assert_eq!(ab.is_spilled(), model_union.len() > ProcSet::INLINE_CAPACITY);

        // Commutativity: b ∪ a gives the same set.
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);

        // Idempotence: folding either operand back in changes nothing.
        let mut twice = ab.clone();
        prop_assert!(!twice.union_with(&a));
        prop_assert!(!twice.union_with(&b));
        prop_assert!(!twice.union_with(&ab.clone()));
        prop_assert_eq!(&twice, &ab);
    }
}
