//! Fault-tolerance integration tests: the threaded runtime must make
//! progress as long as fewer than half of the replicas answer requests
//! (`t < ⌈n/2⌉`, the paper's fault model), and must refuse configurations
//! where quorums could never form.

use fle_model::{Outcome, ProcId};
use fle_runtime::{
    election_participants, renaming_participants, RuntimeConfig, RuntimeError, ThreadedRuntime,
};

/// The largest unresponsive set the model tolerates: `⌈n/2⌉ − 1` nodes.
fn max_faulty(n: usize) -> Vec<ProcId> {
    let tolerable = n.div_ceil(2) - 1;
    (n - tolerable..n).map(ProcId).collect()
}

#[test]
fn election_terminates_with_a_maximal_unresponsive_minority() {
    for n in [3usize, 4, 5, 7] {
        let faulty = max_faulty(n);
        let k = n - faulty.len();
        let config = RuntimeConfig::new(n)
            .with_seed(11 + n as u64)
            .with_unresponsive(faulty.clone());
        let report = ThreadedRuntime::new(config)
            .run(election_participants(k))
            .expect("quorums still form with a minority unresponsive");
        assert_eq!(
            report.winners().len(),
            1,
            "n={n}, {} unresponsive: exactly one winner",
            faulty.len()
        );
        assert_eq!(report.outcomes.len(), k, "every live participant returns");
        assert!(report
            .outcomes
            .values()
            .all(|o| matches!(o, Outcome::Win | Outcome::Lose)));
    }
}

#[test]
fn renaming_terminates_with_an_unresponsive_minority() {
    let n = 5;
    let config = RuntimeConfig::new(n)
        .with_seed(23)
        .with_unresponsive([ProcId(4)]);
    let report = ThreadedRuntime::new(config)
        .run(renaming_participants(4, n))
        .expect("renaming tolerates one unresponsive replica out of five");
    let names: std::collections::BTreeSet<usize> = report.names().values().copied().collect();
    assert_eq!(names.len(), 4, "each live participant got a distinct name");
    assert!(names.iter().all(|&u| (1..=n).contains(&u)));
}

#[test]
fn unresponsive_majority_is_rejected_up_front() {
    // One more unresponsive node than tolerable: the runtime must refuse to
    // start rather than hang waiting for impossible quorums.
    for n in [2usize, 4, 5] {
        let tolerable = n.div_ceil(2) - 1;
        let faulty: Vec<ProcId> = (0..=tolerable).map(ProcId).collect();
        let config = RuntimeConfig::new(n).with_unresponsive(faulty);
        let err = ThreadedRuntime::new(config)
            .run(Vec::new())
            .expect_err("too many unresponsive nodes must be rejected");
        assert!(matches!(err, RuntimeError::TooManyUnresponsive { .. }));
    }
}

#[test]
fn delay_injection_with_faults_still_elects_one_leader() {
    let n = 5;
    let config = RuntimeConfig::new(n)
        .with_seed(7)
        .with_max_delay_micros(100)
        .with_unresponsive([ProcId(0)]);
    let participants = (1..n)
        .map(|i| {
            let p = ProcId(i);
            (
                p,
                Box::new(fle_core::LeaderElection::new(p)) as Box<dyn fle_model::Protocol + Send>,
            )
        })
        .collect();
    let report = ThreadedRuntime::new(config).run(participants).unwrap();
    assert_eq!(report.winners().len(), 1);
    assert_eq!(report.outcomes.len(), n - 1);
}
