//! Differential tests for the schedule-controlled concurrent backend: a
//! fully sequentialized gated run must agree with the deterministic
//! sequential simulator adapter (`fle_sim::SimMemory`).
//!
//! Both backends execute the same protocol state machines in the same order
//! (participant 0 to completion, then 1, …) with the same per-processor coin
//! streams (`seed + proc·0x9e37` — see `SharedRegisters::handle_seeded`), so
//! every coin flip, register write and outcome must coincide even though one
//! side is a borrow-checked sequential loop and the other is real threads
//! serialized at schedule gates. Any divergence means the gate layer changed
//! the backend's semantics — exactly what it must never do.

use fle_model::{Outcome, ProcId};
use fle_runtime::{
    election_participants, renaming_participants, run_scheduled, FifoScheduler, ScheduleConfig,
    SharedRegisters,
};
use fle_sim::SimMemory;
use std::collections::BTreeMap;
use std::sync::Arc;

fn gated_sequential(
    participants: Vec<(ProcId, Box<dyn fle_model::Protocol + Send>)>,
    seed: u64,
) -> BTreeMap<ProcId, Outcome> {
    let registers = Arc::new(SharedRegisters::new(4));
    let k = participants.len();
    let report = run_scheduled(
        &registers,
        0,
        seed,
        participants,
        ScheduleConfig::for_participants(k),
        &mut FifoScheduler,
    );
    assert!(!report.stopped, "a sequential run always completes");
    assert!(report.progress.crashed.is_empty());
    report.progress.outcomes
}

#[test]
fn gated_sequential_election_agrees_with_sim_memory() {
    for n in [3usize, 4, 6] {
        for seed in 0..4u64 {
            let gated = gated_sequential(election_participants(n), seed);
            let mut memory = SimMemory::new(n, seed);
            let sequential = memory.run_all(election_participants(n));
            assert_eq!(
                gated, sequential,
                "n={n} seed={seed}: the gated sequential run must match SimMemory outcome-for-outcome"
            );
            let winners: Vec<ProcId> = gated
                .iter()
                .filter(|(_, o)| **o == Outcome::Win)
                .map(|(p, _)| *p)
                .collect();
            assert_eq!(winners.len(), 1, "n={n} seed={seed}");
        }
    }
}

#[test]
fn gated_sequential_renaming_agrees_with_sim_memory() {
    for seed in 0..4u64 {
        let n = 5;
        let gated = gated_sequential(renaming_participants(n, n), seed);
        let mut memory = SimMemory::new(n, seed);
        let sequential = memory.run_all(renaming_participants(n, n));
        assert_eq!(gated, sequential, "seed={seed}");
        let names: std::collections::BTreeSet<usize> = gated
            .values()
            .filter_map(|o| match o {
                Outcome::Name(u) => Some(*u),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), n, "seed={seed}: names distinct");
        assert!(names.iter().all(|&u| (1..=n).contains(&u)));
    }
}
