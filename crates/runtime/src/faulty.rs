//! Seeded, deterministic fault injection beneath any shared-memory backend.
//!
//! The paper proves its algorithms against a strong adaptive adversary that
//! controls *scheduling*; a real deployment also suffers faults the model
//! abstracts away — slow operations, transient collect failures, processors
//! dying mid-protocol. [`FaultyMemory`] is a decorator over any
//! [`SharedMemory`] implementation that injects exactly those faults from a
//! seeded per-processor RNG, so a faulty run is **reproducible**: the same
//! [`FaultPlan`] produces the same fault sequence per processor regardless
//! of thread interleaving (each processor draws from its own stream).
//!
//! Three fault classes, all configured by [`FaultPlan`]:
//!
//! * **operation delays** — before an operation, sleep a random duration up
//!   to [`FaultPlan::max_delay_micros`] with probability
//!   `delay_per_mille/1000`;
//! * **transient collect failures** — a collect's response is "lost" and
//!   retried internally, up to [`FaultPlan`]'s retry limit per call (the
//!   final attempt always goes through: transient, not permanent);
//! * **crash at operation `k`** — per [`CrashSpec`], a victim processor
//!   stops at its `k`-th shared-memory operation, either by panicking
//!   ([`CrashMode::Panic`], exercising crash *containment* in the service's
//!   shard workers) or by silently abandoning the protocol and returning
//!   [`Outcome::Lose`] ([`CrashMode::Lose`], a fail-stop that keeps every
//!   participant's outcome observable so liveness oracles can fire on it).
//!
//! Because [`FaultyMemory`] also forwards [`ScheduledMemory`], the decorator
//! slides between a gated handle and its protocol: the whole exploration
//! stack (strategies, oracles, record/replay, ddmin shrinking) hunts the
//! backend *under injected faults* without modification — see
//! [`crate::run_scheduled_faulty`] and `fle_explore`.

use crate::report::RuntimeReport;
use crate::shm::SharedRegisters;
use fle_model::{
    Action, CancelToken, CollectedViews, GateVerdict, InstanceId, Key, Outcome, ProcId,
    ProcessMetrics, Protocol, Response, SchedulePoint, ScheduledMemory, SharedMemory, Value,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which processors a [`CrashSpec`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVictim {
    /// Every participant crashes (at its own `at_op`-th operation).
    All,
    /// Only the given processor crashes.
    Proc(ProcId),
}

/// How an injected crash manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The processor panics mid-operation — the ungraceful death a shard
    /// worker must contain with `catch_unwind`.
    Panic,
    /// Fail-stop: the processor performs no further shared-memory effects
    /// and returns [`Outcome::Lose`]. Every participant still produces an
    /// outcome, so safety *and* liveness oracles observe the run.
    Lose,
}

/// Crash `victim` at its `at_op`-th shared-memory operation (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Who crashes.
    pub victim: CrashVictim,
    /// The 1-based operation count at which the crash triggers.
    pub at_op: u64,
    /// Panic or fail-stop.
    pub mode: CrashMode,
    /// Restrict the crash to one register namespace (= one service instance
    /// key). `None` crashes the victim in every run under this plan. Applied
    /// by the runners via [`FaultPlan::for_namespace`].
    pub namespace: Option<u64>,
}

impl CrashSpec {
    /// Every participant fail-stops (returns `Lose`) at its `at_op`-th op.
    pub fn lose_all(at_op: u64) -> Self {
        CrashSpec {
            victim: CrashVictim::All,
            at_op,
            mode: CrashMode::Lose,
            namespace: None,
        }
    }

    /// One processor panics at its `at_op`-th op.
    pub fn panic_proc(victim: ProcId, at_op: u64) -> Self {
        CrashSpec {
            victim: CrashVictim::Proc(victim),
            at_op,
            mode: CrashMode::Panic,
            namespace: None,
        }
    }

    /// Scope the crash to one namespace, leaving other runs un-crashed.
    #[must_use]
    pub fn only_namespace(mut self, namespace: u64) -> Self {
        self.namespace = Some(namespace);
        self
    }
}

/// A deterministic fault-injection plan.
///
/// The default plan injects nothing — [`FaultyMemory`] over a default plan
/// is an identity decorator (plus cancellation polling). Probabilities are
/// integer per-mille (`0..=1000`) so the plan stays `Copy + Eq` and can ride
/// inside exploration configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed of the per-processor fault streams.
    pub seed: u64,
    /// Probability (per mille) of delaying each operation.
    pub delay_per_mille: u16,
    /// Upper bound of one injected delay, in microseconds.
    pub max_delay_micros: u64,
    /// Probability (per mille) of losing a collect's response.
    pub collect_fail_per_mille: u16,
    /// Maximum injected failures per collect call; the attempt after the
    /// last retry always succeeds.
    pub collect_retry_limit: u8,
    /// Optional crash injection.
    pub crash: Option<CrashSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given fault-stream seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Delay each operation with probability `per_mille/1000`, by up to
    /// `max_delay_micros` microseconds.
    #[must_use]
    pub fn with_delays(mut self, per_mille: u16, max_delay_micros: u64) -> Self {
        self.delay_per_mille = per_mille.min(1000);
        self.max_delay_micros = max_delay_micros;
        self
    }

    /// Lose each collect response with probability `per_mille/1000`,
    /// retrying internally at most `retry_limit` times per call.
    #[must_use]
    pub fn with_collect_failures(mut self, per_mille: u16, retry_limit: u8) -> Self {
        self.collect_fail_per_mille = per_mille.min(1000);
        self.collect_retry_limit = retry_limit;
        self
    }

    /// Attach a crash injection.
    #[must_use]
    pub fn with_crash(mut self, crash: CrashSpec) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Whether this plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.delay_per_mille == 0 && self.collect_fail_per_mille == 0 && self.crash.is_none()
    }

    /// The plan as it applies to a run under register `namespace`: a crash
    /// scoped to a different namespace is stripped, everything else passes
    /// through. Called by the runners so one plan can poison exactly one
    /// service instance.
    #[must_use]
    pub fn for_namespace(mut self, namespace: u64) -> Self {
        if let Some(crash) = self.crash {
            if crash.namespace.is_some_and(|only| only != namespace) {
                self.crash = None;
            }
        }
        self
    }
}

/// Counters of the faults actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Shared-memory operations observed (post-crash ops excluded).
    pub ops: u64,
    /// Delays injected.
    pub delays: u64,
    /// Total injected delay, in microseconds.
    pub delay_micros: u64,
    /// Collect responses lost (and internally retried).
    pub collect_failures: u64,
    /// Fail-stop ([`CrashMode::Lose`]) crashes triggered. Panic crashes
    /// unwind before their stats can be merged, so they are counted by the
    /// containment layer (the service's `FailStats`), not here.
    pub crashes: u64,
}

impl FaultStats {
    /// Accumulate another processor's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.ops += other.ops;
        self.delays += other.delays;
        self.delay_micros += other.delay_micros;
        self.collect_failures += other.collect_failures;
        self.crashes += other.crashes;
    }
}

/// A [`SharedMemory`] (and [`ScheduledMemory`]) decorator injecting the
/// faults of a [`FaultPlan`] beneath any backend.
///
/// Each instance owns an independent ChaCha stream seeded from
/// `(plan.seed, proc)`, so the fault sequence a processor experiences is a
/// pure function of the plan — identical across runs and unaffected by how
/// the OS interleaves other threads.
#[derive(Debug)]
pub struct FaultyMemory<M> {
    inner: M,
    proc: ProcId,
    plan: FaultPlan,
    rng: ChaCha8Rng,
    stats: FaultStats,
    abandoned: bool,
}

impl<M> FaultyMemory<M> {
    /// Wrap `inner` for processor `proc` under `plan`.
    pub fn new(inner: M, proc: ProcId, plan: FaultPlan) -> Self {
        let stream = plan
            .seed
            .wrapping_add(fle_model::splitmix64(proc.index() as u64 ^ 0xfa017));
        FaultyMemory {
            inner,
            proc,
            plan,
            rng: ChaCha8Rng::seed_from_u64(stream),
            stats: FaultStats::default(),
            abandoned: false,
        }
    }

    /// The faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether a [`CrashMode::Lose`] crash has triggered: the processor must
    /// perform no further protocol steps (the faulty drive loops check this
    /// and return [`Outcome::Lose`]).
    pub fn abandoned(&self) -> bool {
        self.abandoned
    }

    /// The wrapped memory.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn targets_me(&self, spec: &CrashSpec) -> bool {
        match spec.victim {
            CrashVictim::All => true,
            CrashVictim::Proc(victim) => victim == self.proc,
        }
    }

    /// Count one operation, then fire whatever faults the plan schedules at
    /// it. Returns `false` when the processor has fail-stopped and the
    /// operation must not reach the inner memory.
    fn before_op(&mut self) -> bool {
        if self.abandoned {
            return false;
        }
        self.stats.ops += 1;
        if let Some(crash) = self.plan.crash {
            if self.targets_me(&crash) && self.stats.ops >= crash.at_op {
                match crash.mode {
                    CrashMode::Panic => panic!(
                        "injected crash: {:?} at op {} of plan seed {}",
                        self.proc, self.stats.ops, self.plan.seed
                    ),
                    CrashMode::Lose => {
                        self.stats.crashes += 1;
                        self.abandoned = true;
                        return false;
                    }
                }
            }
        }
        if self.plan.delay_per_mille > 0
            && self.rng.gen_range(0..1000u32) < u32::from(self.plan.delay_per_mille)
        {
            let micros = self.rng.gen_range(0..=self.plan.max_delay_micros);
            self.stats.delays += 1;
            self.stats.delay_micros += micros;
            std::thread::sleep(Duration::from_micros(micros));
        }
        true
    }
}

impl<M: SharedMemory> SharedMemory for FaultyMemory<M> {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        if self.before_op() {
            self.inner.propagate(entries);
        }
        // Fail-stop: the write is lost, exactly as if the processor died
        // before issuing it.
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        if !self.before_op() {
            return CollectedViews::from_shared(Vec::new());
        }
        let mut failures = 0u8;
        while failures < self.plan.collect_retry_limit
            && self.plan.collect_fail_per_mille > 0
            && self.rng.gen_range(0..1000u32) < u32::from(self.plan.collect_fail_per_mille)
        {
            // The response is "lost": perform the collect anyway (the
            // request reached the registers) but drop its result and retry.
            let _ = self.inner.collect(instance);
            self.stats.collect_failures += 1;
            failures += 1;
        }
        self.inner.collect(instance)
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        if self.before_op() {
            self.inner.flip(prob_one)
        } else {
            false
        }
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        if self.before_op() {
            self.inner.choose(choices)
        } else {
            0
        }
    }
}

impl<M: ScheduledMemory> ScheduledMemory for FaultyMemory<M> {
    fn reach(&mut self, point: SchedulePoint, state: fle_model::LocalStateView) -> GateVerdict {
        self.inner.reach(point, state)
    }
}

/// [`fle_model::drive`] over a [`FaultyMemory`]: polls `cancel` before every
/// step and converts a fail-stop abandonment into [`Outcome::Lose`].
///
/// Returns `None` only when cancelled.
pub fn drive_faulty<P, M>(
    protocol: &mut P,
    memory: &mut FaultyMemory<M>,
    cancel: &CancelToken,
) -> Option<Outcome>
where
    P: Protocol + ?Sized,
    M: SharedMemory,
{
    let mut response = Response::Start;
    loop {
        if cancel.is_cancelled() {
            return None;
        }
        if memory.abandoned() {
            return Some(Outcome::Lose);
        }
        match protocol.step(response) {
            Action::Return(outcome) => return Some(outcome),
            action => {
                response = memory
                    .perform(action)
                    .expect("only Action::Return yields no response");
            }
        }
    }
}

/// [`fle_model::drive_scheduled`] over a [`FaultyMemory`]: every operation
/// still parks at its schedule gate; a fail-stop abandonment gates through
/// [`SchedulePoint::Return`] (so the grant accounting stays consistent) and
/// then returns [`Outcome::Lose`].
///
/// Returns `None` when the *scheduler* crashed the processor at a gate.
pub fn drive_scheduled_faulty<P, M>(
    protocol: &mut P,
    memory: &mut FaultyMemory<M>,
) -> Option<Outcome>
where
    P: Protocol + ?Sized,
    M: ScheduledMemory,
{
    let mut response = Response::Start;
    loop {
        if memory.abandoned() {
            return match ScheduledMemory::reach(
                memory,
                SchedulePoint::Return,
                protocol.adversary_view(),
            ) {
                GateVerdict::Crashed => None,
                GateVerdict::Proceed => Some(Outcome::Lose),
            };
        }
        let action = protocol.step(response);
        let point = SchedulePoint::of(&action);
        match ScheduledMemory::reach(memory, point, protocol.adversary_view()) {
            GateVerdict::Crashed => return None,
            GateVerdict::Proceed => {}
        }
        match action {
            Action::Return(outcome) => return Some(outcome),
            action => {
                response = memory
                    .perform(action)
                    .expect("only Action::Return yields no response");
            }
        }
    }
}

/// [`crate::run_concurrent`] under a [`FaultPlan`] and a [`CancelToken`]:
/// one OS thread per participant over the shared registers, each behind its
/// own [`FaultyMemory`].
///
/// Returns `None` when the token tripped before every participant finished
/// (the namespace's registers are left partially written — retire them).
/// Panic-mode injected crashes propagate to the caller, exactly like a
/// genuine protocol panic. Otherwise returns the report plus the merged
/// fault counters.
pub fn run_concurrent_faulty(
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    plan: &FaultPlan,
    cancel: &CancelToken,
) -> Option<(RuntimeReport, FaultStats)> {
    type Finished = (ProcId, Option<Outcome>, ProcessMetrics, FaultStats);
    let plan = plan.for_namespace(namespace);
    let results: Vec<Finished> = std::thread::scope(|scope| {
        let handles: Vec<_> = participants
            .into_iter()
            .map(|(proc, mut protocol)| {
                let mut memory =
                    FaultyMemory::new(registers.handle(namespace, proc, seed), proc, plan);
                scope.spawn(move || {
                    let outcome = drive_faulty(protocol.as_mut(), &mut memory, cancel);
                    (proc, outcome, memory.inner().metrics(), memory.stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("participant threads propagate panics to the caller")
            })
            .collect()
    });

    let mut report = RuntimeReport::default();
    let mut faults = FaultStats::default();
    let mut cancelled = false;
    for (proc, outcome, metrics, stats) in results {
        faults.merge(&stats);
        match outcome {
            Some(outcome) => {
                report.outcomes.insert(proc, outcome);
                *report.metrics.proc_mut(proc) = metrics;
            }
            None => cancelled = true,
        }
    }
    if cancelled {
        None
    } else {
        Some((report, faults))
    }
}

/// [`crate::run_concurrent`] with cooperative cancellation but no faults.
///
/// Returns `None` when the token tripped mid-run (retire the namespace).
pub fn run_concurrent_cancellable(
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    cancel: &CancelToken,
) -> Option<RuntimeReport> {
    run_concurrent_faulty(
        registers,
        namespace,
        seed,
        participants,
        &FaultPlan::default(),
        cancel,
    )
    .map(|(report, _)| report)
}

/// Shared accumulator the scheduled runner uses to merge per-thread
/// [`FaultStats`] (participant threads merge on every exit path except a
/// panic).
pub(crate) type SharedFaultStats = Mutex<FaultStats>;

/// Merge `stats` into the shared accumulator, tolerating a poisoned lock
/// (another participant may have panicked by injection).
pub(crate) fn merge_shared(shared: &SharedFaultStats, stats: &FaultStats) {
    match shared.lock() {
        Ok(mut guard) => guard.merge(stats),
        Err(poisoned) => poisoned.into_inner().merge(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{FifoScheduler, ScheduleConfig};
    use crate::{election_participants, run_scheduled_faulty};

    #[test]
    fn noop_plan_is_an_identity_decorator() {
        let run = |plan: Option<FaultPlan>| {
            let registers = Arc::new(SharedRegisters::new(2));
            run_scheduled_faulty(
                &registers,
                0,
                7,
                election_participants(4),
                ScheduleConfig::for_participants(4),
                &mut FifoScheduler,
                plan,
            )
        };
        let bare = run(None);
        let decorated = run(Some(FaultPlan::new(9)));
        assert!(FaultPlan::new(9).is_noop());
        assert_eq!(bare.progress.outcomes, decorated.progress.outcomes);
        assert_eq!(bare.grants, decorated.grants);
        assert_eq!(decorated.faults.delays, 0);
        assert_eq!(decorated.faults.collect_failures, 0);
        assert!(decorated.faults.ops > 0);
    }

    #[test]
    fn faults_are_deterministic_given_the_seed() {
        let run = || {
            let registers = Arc::new(SharedRegisters::new(2));
            run_scheduled_faulty(
                &registers,
                0,
                5,
                election_participants(4),
                ScheduleConfig::for_participants(4),
                &mut FifoScheduler,
                Some(
                    FaultPlan::new(41)
                        .with_delays(300, 20)
                        .with_collect_failures(400, 3),
                ),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.progress.outcomes, b.progress.outcomes);
        assert_eq!(a.grants, b.grants);
        assert_eq!(a.faults, b.faults, "same seed, same injected faults");
        assert!(a.faults.collect_failures > 0, "the plan must actually fire");
        assert!(a.faults.delays > 0);
    }

    #[test]
    fn lose_all_crash_leaves_no_winner() {
        let registers = Arc::new(SharedRegisters::new(2));
        let plan = FaultPlan::new(3).with_crash(CrashSpec::lose_all(2));
        let (report, faults) = run_concurrent_faulty(
            &registers,
            0,
            11,
            election_participants(4),
            &plan,
            &CancelToken::none(),
        )
        .expect("not cancelled");
        assert_eq!(report.outcomes.len(), 4, "every participant returns");
        assert!(report.winners().is_empty(), "a crashed field elects nobody");
        assert_eq!(faults.crashes, 4);
        assert!(report.outcomes.values().all(|o| *o == Outcome::Lose));
    }

    #[test]
    #[should_panic(expected = "participant threads propagate panics")]
    fn panic_mode_propagates_like_a_real_panic() {
        let registers = Arc::new(SharedRegisters::new(1));
        let plan = FaultPlan::new(1).with_crash(CrashSpec::panic_proc(ProcId(0), 2));
        let _ = run_concurrent_faulty(
            &registers,
            0,
            1,
            election_participants(3),
            &plan,
            &CancelToken::none(),
        );
    }

    #[test]
    fn cancelled_token_aborts_the_run() {
        let registers = Arc::new(SharedRegisters::new(1));
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(run_concurrent_faulty(
            &registers,
            0,
            1,
            election_participants(3),
            &FaultPlan::default(),
            &cancel,
        )
        .is_none());
        assert!(
            run_concurrent_cancellable(&registers, 1, 1, election_participants(3), &cancel)
                .is_none()
        );
    }

    #[test]
    fn uncancelled_cancellable_run_matches_normal_completion() {
        let registers = Arc::new(SharedRegisters::new(2));
        let report = run_concurrent_cancellable(
            &registers,
            0,
            9,
            election_participants(5),
            &CancelToken::none(),
        )
        .expect("never cancelled");
        assert_eq!(report.winners().len(), 1);
        assert_eq!(report.outcomes.len(), 5);
    }
}
