//! The schedule-controlled runner for the concurrent backend: real threads,
//! adversary-chosen interleavings.
//!
//! [`run_concurrent`](crate::run_concurrent) lets the operating system
//! interleave participant threads — realistic, but unrepeatable and outside
//! any adversary's control. This module adds the other half: every
//! participant runs through [`fle_model::drive_scheduled`], so each of its
//! shared-memory operations (`propagate` / `collect` / `flip` / `choose`,
//! plus the final return) blocks at a [`SchedulePoint`] gate until the
//! [`ScheduleController`] grants it. The controller only ever grants **one**
//! processor at a time and waits for it to reach its next gate before
//! granting again, which serializes the execution into an explicit
//! interleaving of real backend operations:
//!
//! * the *operations* are the genuine article — the same sharded locks and
//!   copy-on-write snapshots of [`SharedRegisters`] that production traffic
//!   exercises;
//! * the *interleaving* is chosen by a pluggable [`GateScheduler`], which
//!   observes exactly what the paper's strong adaptive adversary may observe
//!   (who is enabled, each processor's [`LocalStateView`] including coins,
//!   the crash budget) and picks who moves next or who crashes;
//! * the whole run is **deterministic** in the scheduler's choices: with
//!   seeded per-processor RNGs, replaying the same grant sequence reproduces
//!   the same registers, coins and outcomes regardless of OS scheduling or
//!   machine load — which is what makes decision-trace record/replay and
//!   ddmin shrinking (in `fle-explore`) work on real threads.
//!
//! Quiescence is the key invariant: the controller waits until every live
//! participant is parked at a gate before consulting the scheduler, so the
//! picker always sees the complete set of enabled operations (the analogue
//! of the simulator's enabled-event set) and never races a running thread.
//!
//! Bounded preemption — limiting how often the schedule may switch away
//! from a thread that could continue (the CHESS heuristic) — is a property
//! of the *picker*, not the runner: wrap any scheduler's decisions in a
//! preemption counter (see `fle_explore`'s `PreemptionBound` adversary
//! combinator) and the runner executes the bounded schedule unchanged.
//!
//! # Example
//!
//! Run an election fully sequentialized (processor 0 to completion, then 1,
//! …) — the gated twin of `fle_sim::SimMemory::run_all`:
//!
//! ```
//! use fle_runtime::{election_participants, FifoScheduler, ScheduleConfig, SharedRegisters};
//! use std::sync::Arc;
//!
//! let registers = Arc::new(SharedRegisters::new(4));
//! let report = fle_runtime::run_scheduled(
//!     &registers,
//!     0,
//!     7,
//!     election_participants(3),
//!     ScheduleConfig::for_participants(3),
//!     &mut FifoScheduler,
//! );
//! assert_eq!(report.progress.winners().len(), 1);
//! assert!(!report.stopped);
//! ```

use crate::faulty::{
    drive_scheduled_faulty, merge_shared, FaultPlan, FaultStats, FaultyMemory, SharedFaultStats,
};
use crate::shm::{GatedRegisterHandle, SharedRegisters};
use fle_model::{
    drive_scheduled, GateVerdict, LocalStateView, Outcome, ProcId, Protocol, SchedulePoint,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Limits of one schedule-controlled run.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Crashes the scheduler may spend (the paper's `t < n/2` budget).
    pub crash_budget: usize,
    /// Maximum number of grants before the runner stops the execution and
    /// reports `budget_exhausted` — the liveness backstop for schedules that
    /// never let the protocols finish.
    pub max_grants: u64,
}

impl ScheduleConfig {
    /// The default limits for `k` participants: the paper's maximal crash
    /// budget `⌈k/2⌉ − 1` and a generous grant budget (protocols finish in
    /// `O(k log* k)` operations per participant; the default leaves two
    /// orders of magnitude of slack).
    pub fn for_participants(k: usize) -> Self {
        ScheduleConfig {
            crash_budget: k.div_ceil(2).saturating_sub(1),
            max_grants: 2_000 * (k as u64).max(1),
        }
    }

    /// Override the crash budget.
    #[must_use]
    pub fn with_crash_budget(mut self, budget: usize) -> Self {
        self.crash_budget = budget;
        self
    }

    /// Override the grant budget.
    #[must_use]
    pub fn with_max_grants(mut self, max_grants: u64) -> Self {
        self.max_grants = max_grants;
        self
    }
}

/// One participant parked at its gate, as the scheduler sees it.
#[derive(Debug, Clone)]
pub struct WaitingAt {
    /// The parked processor.
    pub proc: ProcId,
    /// The shared-memory operation it is about to perform.
    pub point: SchedulePoint,
    /// The local state the strong adversary may inspect (round, coin, …),
    /// snapshotted when the processor reached the gate.
    pub state: LocalStateView,
}

/// Everything a [`GateScheduler`] may inspect before picking: the quiescent
/// gate state (every live participant is parked in `waiting`, sorted by
/// processor id) plus the execution's progress so far.
#[derive(Debug)]
pub struct GateObservation<'a> {
    /// Number of participants in this run.
    pub participants: usize,
    /// Grants made so far (the concurrent backend's event counter).
    pub grants_made: u64,
    /// Remaining crash budget.
    pub crash_budget_left: usize,
    /// Live participants parked at their gates, ascending by processor id.
    /// Never empty when the scheduler is consulted.
    pub waiting: &'a [WaitingAt],
    /// Outcomes, intervals and crashes accumulated so far.
    pub progress: &'a ScheduledProgress,
}

/// A scheduler's decision at one quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateCommand {
    /// Grant the `index`-th entry of [`GateObservation::waiting`] (indices
    /// out of range clamp to the last waiting entry — the same tolerance as
    /// `fle_sim::ReplayAdversary`, so an edited replay stays a valid
    /// schedule and both substrates sanitize identically).
    Run(usize),
    /// Crash the given processor. Ignored (treated as `Run(0)`) when the
    /// budget is spent or the processor is not waiting, so schedulers can be
    /// replayed tolerantly.
    Crash(ProcId),
    /// Abort the run: every remaining participant is crashed and the report
    /// is marked `stopped`. Used by online safety oracles that already found
    /// what they were looking for.
    Stop,
}

/// Picks the next grant at every quiescent point of a scheduled run — the
/// concurrent backend's analogue of `fle_sim::Adversary`.
pub trait GateScheduler {
    /// Choose the next command. `obs.waiting` is never empty.
    fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand;
}

impl<S: GateScheduler + ?Sized> GateScheduler for &mut S {
    fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
        (**self).pick(obs)
    }
}

/// Always grants the lowest-id waiting processor: runs participant 0 to
/// completion, then 1, and so on — the fully sequential schedule that
/// `fle_sim::SimMemory` executes, useful for differential tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl GateScheduler for FifoScheduler {
    fn pick(&mut self, _obs: &GateObservation<'_>) -> GateCommand {
        GateCommand::Run(0)
    }
}

/// Outcomes and adversary-relevant bookkeeping of an in-progress (or
/// finished) scheduled run.
#[derive(Debug, Clone, Default)]
pub struct ScheduledProgress {
    /// Outcome of every participant that returned.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// `(first grant, return grant)` per participant — the
    /// invocation/response intervals linearizability checks need. Both
    /// bounds are 1-based post-increment grant counts, matching the
    /// simulator's event-counter convention for its intervals.
    pub intervals: BTreeMap<ProcId, (u64, Option<u64>)>,
    /// Participants crashed by the scheduler (or by a stop).
    pub crashed: Vec<ProcId>,
}

impl ScheduledProgress {
    /// Participants that returned [`Outcome::Win`].
    pub fn winners(&self) -> Vec<ProcId> {
        self.outcomes
            .iter()
            .filter(|(_, o)| **o == Outcome::Win)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Names assigned by a renaming run, keyed by processor.
    pub fn names(&self) -> BTreeMap<ProcId, usize> {
        self.outcomes
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((*p, *u)),
                _ => None,
            })
            .collect()
    }
}

/// The result of one schedule-controlled run.
#[derive(Debug, Clone, Default)]
pub struct ScheduledReport {
    /// Outcomes, intervals and crashes.
    pub progress: ScheduledProgress,
    /// Total grants executed.
    pub grants: u64,
    /// Whether the run was aborted ([`GateCommand::Stop`] or grant budget).
    pub stopped: bool,
    /// Whether the abort was caused by the grant budget running out.
    pub budget_exhausted: bool,
    /// Injected-fault counters, merged over all participants. All zero when
    /// the run used no [`FaultPlan`].
    pub faults: FaultStats,
}

/// The lifecycle of one participant slot, driven from both sides: the
/// participant thread moves `Running → Waiting` (at a gate) and
/// `Granted → Running` (through it), the controller moves
/// `Waiting → Granted | Doomed`, and terminal states are `Done`/`Crashed`.
#[derive(Debug)]
enum SlotPhase {
    /// Executing between gates (local computation or the granted operation).
    Running,
    /// Parked at a gate.
    Waiting(SchedulePoint, LocalStateView),
    /// Gate opened; the thread has not yet re-acquired the lock.
    Granted,
    /// Crash verdict pending; the thread has not yet acknowledged it.
    Doomed,
    /// Returned with the recorded outcome (taken by the harvester).
    Done(Option<Outcome>),
    /// Acknowledged a crash (or panicked).
    Crashed,
}

#[derive(Debug)]
struct Slot {
    proc: ProcId,
    phase: SlotPhase,
    harvested: bool,
}

/// The gate shared by all participant threads of one scheduled run.
///
/// Constructed internally by [`run_scheduled`]; participant handles
/// ([`GatedRegisterHandle`]) park at their gates and the runner's control
/// loop grants them one at a time.
#[derive(Debug)]
pub struct ScheduleController {
    inner: Mutex<Vec<Slot>>,
    gate: Condvar,
}

const LOCK: &str = "no schedule-gate user panics while holding the lock";

impl ScheduleController {
    fn new(procs: &[ProcId]) -> Self {
        ScheduleController {
            inner: Mutex::new(
                procs
                    .iter()
                    .map(|&proc| Slot {
                        proc,
                        phase: SlotPhase::Running,
                        harvested: false,
                    })
                    .collect(),
            ),
            gate: Condvar::new(),
        }
    }

    /// Called by participant `slot`'s thread before each operation: park at
    /// the gate and block until the controller grants or crashes it.
    pub(crate) fn reach(
        &self,
        slot: usize,
        point: SchedulePoint,
        state: LocalStateView,
    ) -> GateVerdict {
        let mut slots = self.inner.lock().expect(LOCK);
        slots[slot].phase = SlotPhase::Waiting(point, state);
        self.gate.notify_all();
        loop {
            match slots[slot].phase {
                SlotPhase::Granted => {
                    slots[slot].phase = SlotPhase::Running;
                    return GateVerdict::Proceed;
                }
                SlotPhase::Doomed => {
                    slots[slot].phase = SlotPhase::Crashed;
                    self.gate.notify_all();
                    return GateVerdict::Crashed;
                }
                _ => slots = self.gate.wait(slots).expect(LOCK),
            }
        }
    }

    /// Called by a participant thread after its protocol returned.
    fn finished(&self, slot: usize, outcome: Outcome) {
        let mut slots = self.inner.lock().expect(LOCK);
        slots[slot].phase = SlotPhase::Done(Some(outcome));
        self.gate.notify_all();
    }

    /// Last-resort transition used by the panic guard: a thread that dies
    /// without reaching a terminal state counts as crashed, so the control
    /// loop never waits on it forever.
    fn abort(&self, slot: usize) {
        let mut slots = self.inner.lock().expect(LOCK);
        if !matches!(slots[slot].phase, SlotPhase::Done(_) | SlotPhase::Crashed) {
            slots[slot].phase = SlotPhase::Crashed;
            self.gate.notify_all();
        }
    }
}

/// Marks the slot crashed if the participant thread unwinds (a protocol
/// panic) so the controller cannot deadlock on a dead thread.
struct AbortGuard<'c> {
    controller: &'c ScheduleController,
    slot: usize,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        self.controller.abort(self.slot);
    }
}

/// Run one protocol instance on the concurrent backend under an explicit
/// schedule: one OS thread per participant, every shared-memory operation
/// gated, the interleaving chosen by `scheduler`.
///
/// Participants are sorted by processor id; `seed` feeds each participant's
/// coin stream exactly as `fle_sim::SimMemory` would (`seed + proc·0x9e37`),
/// so a [`FifoScheduler`] run is coin-for-coin comparable with the
/// sequential simulator adapter. The registers written under `namespace` are
/// left in place for inspection; retire them with
/// [`SharedRegisters::retire`] when done.
///
/// The run is deterministic in `scheduler`'s decisions: same decisions, same
/// seed → same outcomes, registers and report, independent of OS scheduling.
pub fn run_scheduled(
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    config: ScheduleConfig,
    scheduler: &mut dyn GateScheduler,
) -> ScheduledReport {
    run_scheduled_faulty(
        registers,
        namespace,
        seed,
        participants,
        config,
        scheduler,
        None,
    )
}

/// [`run_scheduled`] with each participant's gated handle wrapped in a
/// [`FaultyMemory`] when `plan` is given: the adversary-chosen interleaving
/// *and* the injected faults are both deterministic, so exploration
/// strategies, record/replay and ddmin shrinking work unchanged on runs
/// under faults. `ScheduledReport::faults` carries the merged counters.
#[allow(clippy::too_many_arguments)]
pub fn run_scheduled_faulty(
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    mut participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    config: ScheduleConfig,
    scheduler: &mut dyn GateScheduler,
    plan: Option<FaultPlan>,
) -> ScheduledReport {
    participants.sort_by_key(|(proc, _)| *proc);
    let procs: Vec<ProcId> = participants.iter().map(|(proc, _)| *proc).collect();
    let controller = ScheduleController::new(&procs);
    let fault_totals: SharedFaultStats = Mutex::new(FaultStats::default());
    let mut report = ScheduledReport::default();

    std::thread::scope(|scope| {
        for (slot, (proc, mut protocol)) in participants.into_iter().enumerate() {
            let controller = &controller;
            let fault_totals = &fault_totals;
            let gated = GatedRegisterHandle::new(
                registers.handle_seeded(namespace, proc, seed),
                controller,
                slot,
            );
            scope.spawn(move || {
                let _guard = AbortGuard { controller, slot };
                match plan {
                    None => {
                        let mut memory = gated;
                        if let Some(outcome) = drive_scheduled(protocol.as_mut(), &mut memory) {
                            controller.finished(slot, outcome);
                        }
                    }
                    Some(plan) => {
                        let mut memory =
                            FaultyMemory::new(gated, proc, plan.for_namespace(namespace));
                        let outcome = drive_scheduled_faulty(protocol.as_mut(), &mut memory);
                        merge_shared(fault_totals, &memory.stats());
                        if let Some(outcome) = outcome {
                            controller.finished(slot, outcome);
                        }
                    }
                }
                // A crash verdict already moved the slot to Crashed.
            });
        }

        let mut crash_budget_left = config.crash_budget;
        let mut stopping = false;
        loop {
            // Wait for quiescence: every slot parked at a gate or terminal.
            let mut slots = controller.inner.lock().expect(LOCK);
            while slots.iter().any(|s| {
                matches!(
                    s.phase,
                    SlotPhase::Running | SlotPhase::Granted | SlotPhase::Doomed
                )
            }) {
                slots = controller.gate.wait(slots).expect(LOCK);
            }

            // Harvest terminal transitions into the progress report.
            for slot in slots.iter_mut() {
                if slot.harvested {
                    continue;
                }
                match &mut slot.phase {
                    SlotPhase::Done(outcome) => {
                        let outcome = outcome.take().expect("outcomes are harvested once");
                        report.progress.outcomes.insert(slot.proc, outcome);
                        report
                            .progress
                            .intervals
                            .entry(slot.proc)
                            .or_insert((report.grants, None))
                            .1 = Some(report.grants);
                        slot.harvested = true;
                    }
                    SlotPhase::Crashed => {
                        report.progress.crashed.push(slot.proc);
                        slot.harvested = true;
                    }
                    _ => {}
                }
            }

            // Collect the waiting set (slot order = ascending processor
            // id), keeping slot indices in a parallel vector so the
            // snapshot handed to the scheduler is cloned exactly once.
            let mut slot_indices = Vec::new();
            let mut waiting: Vec<WaitingAt> = Vec::new();
            for (index, slot) in slots.iter().enumerate() {
                if let SlotPhase::Waiting(point, state) = &slot.phase {
                    slot_indices.push(index);
                    waiting.push(WaitingAt {
                        proc: slot.proc,
                        point: *point,
                        state: state.clone(),
                    });
                }
            }
            if waiting.is_empty() {
                break; // every participant finished or crashed
            }

            if report.grants >= config.max_grants && !stopping {
                report.budget_exhausted = true;
                stopping = true;
            }
            let command = if stopping {
                GateCommand::Stop
            } else {
                // Consult the scheduler outside the lock: it may be an
                // arbitrarily expensive oracle-checking adversary, and every
                // participant is parked, so nothing races the snapshot.
                drop(slots);
                let command = scheduler.pick(&GateObservation {
                    participants: procs.len(),
                    grants_made: report.grants,
                    crash_budget_left,
                    waiting: &waiting,
                    progress: &report.progress,
                });
                slots = controller.inner.lock().expect(LOCK);
                command
            };

            match command {
                GateCommand::Stop => {
                    report.stopped = true;
                    stopping = true;
                    for slot in slots.iter_mut() {
                        if matches!(slot.phase, SlotPhase::Waiting(..)) {
                            slot.phase = SlotPhase::Doomed;
                        }
                    }
                    controller.gate.notify_all();
                }
                GateCommand::Crash(victim)
                    if crash_budget_left > 0
                        && waiting.iter().any(|entry| entry.proc == victim) =>
                {
                    crash_budget_left -= 1;
                    let pos = waiting
                        .iter()
                        .position(|entry| entry.proc == victim)
                        .expect("victim verified waiting above");
                    slots[slot_indices[pos]].phase = SlotPhase::Doomed;
                    controller.gate.notify_all();
                }
                command => {
                    // Illegal crashes degrade to the oldest waiting grant,
                    // mirroring the tolerant replay semantics of the
                    // simulator's `ReplayAdversary`.
                    let pick = match command {
                        GateCommand::Run(pick) => pick.min(waiting.len() - 1),
                        _ => 0,
                    };
                    // Count the grant before recording the interval start so
                    // both ends of an interval use the post-increment counter,
                    // matching the simulator's convention — otherwise a loser
                    // returning at grant g and a winner starting at grant g+1
                    // would look concurrent to the linearizability check.
                    report.grants += 1;
                    report
                        .progress
                        .intervals
                        .entry(waiting[pick].proc)
                        .or_insert((report.grants, None));
                    slots[slot_indices[pick]].phase = SlotPhase::Granted;
                    controller.gate.notify_all();
                }
            }
        }
    });

    report.faults = match fault_totals.lock() {
        Ok(guard) => *guard,
        Err(poisoned) => *poisoned.into_inner(),
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{election_participants, renaming_participants};
    use std::collections::BTreeSet;

    /// Round-robin over waiting participants, for interleaving tests.
    struct RoundRobin {
        next: usize,
    }

    impl GateScheduler for RoundRobin {
        fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
            let pick = self.next % obs.waiting.len();
            self.next = self.next.wrapping_add(1);
            GateCommand::Run(pick)
        }
    }

    #[test]
    fn fifo_schedule_elects_exactly_one_leader() {
        let registers = Arc::new(SharedRegisters::new(2));
        let report = run_scheduled(
            &registers,
            0,
            3,
            election_participants(4),
            ScheduleConfig::for_participants(4),
            &mut FifoScheduler,
        );
        assert_eq!(report.progress.winners().len(), 1);
        assert_eq!(report.progress.outcomes.len(), 4);
        assert!(report.progress.crashed.is_empty());
        assert!(!report.stopped);
        assert!(report.grants > 0);
    }

    #[test]
    fn fifo_schedule_runs_participants_in_order() {
        // Under FIFO, participant i's return grant precedes participant
        // i+1's first grant: the run is genuinely sequential.
        let registers = Arc::new(SharedRegisters::new(1));
        let report = run_scheduled(
            &registers,
            0,
            9,
            election_participants(3),
            ScheduleConfig::for_participants(3),
            &mut FifoScheduler,
        );
        assert_eq!(
            report.progress.intervals[&ProcId(0)].0,
            1,
            "interval bounds count grants post-increment, like the simulator"
        );
        for i in 0..2usize {
            let (_, end) = report.progress.intervals[&ProcId(i)];
            let (start, _) = report.progress.intervals[&ProcId(i + 1)];
            assert!(
                end.expect("finished") < start,
                "participant {i} must finish strictly before {} starts",
                i + 1
            );
        }
    }

    #[test]
    fn round_robin_renaming_assigns_unique_tight_names() {
        let registers = Arc::new(SharedRegisters::new(4));
        let n = 5;
        let report = run_scheduled(
            &registers,
            1,
            11,
            renaming_participants(n, n),
            ScheduleConfig::for_participants(n),
            &mut RoundRobin { next: 0 },
        );
        let names: BTreeSet<usize> = report.progress.names().values().copied().collect();
        assert_eq!(names.len(), n);
        assert!(names.iter().all(|&u| (1..=n).contains(&u)));
    }

    #[test]
    fn identical_schedules_are_deterministic() {
        let run = || {
            let registers = Arc::new(SharedRegisters::new(3));
            run_scheduled(
                &registers,
                0,
                5,
                election_participants(4),
                ScheduleConfig::for_participants(4),
                &mut RoundRobin { next: 0 },
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.progress.outcomes, b.progress.outcomes);
        assert_eq!(a.progress.intervals, b.progress.intervals);
        assert_eq!(a.grants, b.grants);
    }

    #[test]
    fn crashes_remove_participants_and_respect_the_budget() {
        /// Crashes processors 0 and 1 at the first opportunity, then FIFO.
        struct CrashTwo;
        impl GateScheduler for CrashTwo {
            fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
                for victim in [ProcId(0), ProcId(1)] {
                    if obs.crash_budget_left > 0
                        && obs.waiting.iter().any(|w| w.proc == victim)
                        && !obs.progress.crashed.contains(&victim)
                    {
                        return GateCommand::Crash(victim);
                    }
                }
                GateCommand::Run(0)
            }
        }
        let registers = Arc::new(SharedRegisters::new(2));
        // Budget 1: only the first crash lands, the second degrades.
        let report = run_scheduled(
            &registers,
            0,
            2,
            election_participants(5),
            ScheduleConfig::for_participants(5).with_crash_budget(1),
            &mut CrashTwo,
        );
        assert_eq!(report.progress.crashed, vec![ProcId(0)]);
        assert_eq!(report.progress.outcomes.len(), 4, "survivors all return");
        assert_eq!(report.progress.winners().len(), 1);
    }

    #[test]
    fn stop_crashes_everyone_and_marks_the_report() {
        struct StopAfter(u64);
        impl GateScheduler for StopAfter {
            fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
                if obs.grants_made >= self.0 {
                    GateCommand::Stop
                } else {
                    GateCommand::Run(0)
                }
            }
        }
        let registers = Arc::new(SharedRegisters::new(2));
        let report = run_scheduled(
            &registers,
            0,
            1,
            election_participants(4),
            ScheduleConfig::for_participants(4),
            &mut StopAfter(3),
        );
        assert!(report.stopped);
        assert!(!report.budget_exhausted);
        assert_eq!(report.grants, 3);
        assert_eq!(
            report.progress.outcomes.len() + report.progress.crashed.len(),
            4
        );
        assert!(!report.progress.crashed.is_empty());
    }

    #[test]
    fn grant_budget_exhaustion_stops_the_run() {
        let registers = Arc::new(SharedRegisters::new(2));
        let report = run_scheduled(
            &registers,
            0,
            1,
            election_participants(4),
            ScheduleConfig::for_participants(4).with_max_grants(5),
            &mut FifoScheduler,
        );
        assert!(report.stopped);
        assert!(report.budget_exhausted);
        assert_eq!(report.grants, 5);
        assert!(!report.progress.crashed.is_empty());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn panicking_protocols_propagate_instead_of_deadlocking() {
        use fle_model::{Action, Response};
        struct Bomb;
        impl Protocol for Bomb {
            fn step(&mut self, _response: Response) -> Action {
                panic!("deliberate test panic");
            }
            fn adversary_view(&self) -> LocalStateView {
                LocalStateView::new("bomb", "armed")
            }
        }
        // Without the abort guard the control loop would wait forever on the
        // dead thread; with it, the run completes and the scope re-raises
        // the participant's panic (this test hanging = the guard is broken).
        let registers = Arc::new(SharedRegisters::new(1));
        let mut participants = election_participants(2);
        participants.push((ProcId(2), Box::new(Bomb)));
        let _ = run_scheduled(
            &registers,
            0,
            4,
            participants,
            ScheduleConfig::for_participants(3),
            &mut FifoScheduler,
        );
    }
}
