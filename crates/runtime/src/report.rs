//! The result of one threaded execution.

use fle_model::{ExecutionMetrics, Outcome, ProcId};
use std::collections::BTreeMap;

/// Outcomes and complexity counters of a threaded execution.
#[derive(Debug, Default)]
pub struct RuntimeReport {
    /// Outcome of every participant.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Complexity counters per processor.
    pub metrics: ExecutionMetrics,
}

impl RuntimeReport {
    /// Outcome of processor `p`, if it participated and returned.
    pub fn outcome(&self, p: ProcId) -> Option<Outcome> {
        self.outcomes.get(&p).copied()
    }

    /// Participants that returned [`Outcome::Win`].
    pub fn winners(&self) -> Vec<ProcId> {
        self.outcomes
            .iter()
            .filter(|(_, o)| **o == Outcome::Win)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Names assigned by a renaming execution.
    pub fn names(&self) -> BTreeMap<ProcId, usize> {
        self.outcomes
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((*p, *u)),
                _ => None,
            })
            .collect()
    }

    /// Total messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.metrics.total_messages()
    }

    /// Maximum communicate calls by any single node (the paper's time
    /// complexity measure).
    pub fn max_communicate_calls(&self) -> u64 {
        self.metrics.max_communicate_calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let mut report = RuntimeReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Win);
        report.outcomes.insert(ProcId(1), Outcome::Name(2));
        report.metrics.proc_mut(ProcId(0)).messages_sent = 5;
        report.metrics.proc_mut(ProcId(0)).communicate_calls = 2;

        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        assert_eq!(report.winners(), vec![ProcId(0)]);
        assert_eq!(report.names()[&ProcId(1)], 2);
        assert_eq!(report.total_messages(), 5);
        assert_eq!(report.max_communicate_calls(), 2);
        assert_eq!(report.outcome(ProcId(9)), None);
    }
}
