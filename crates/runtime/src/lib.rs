//! Real-thread execution backends for the paper's protocols.
//!
//! Where `fle-sim` gives deterministic, adversary-controlled executions, this
//! crate runs the *same* [`fle_model::Protocol`] state machines with genuine
//! concurrency, through two implementations of the
//! [`fle_model::SharedMemory`] contract:
//!
//! * [`ThreadedRuntime`] — the **message-passing** backend: one OS thread per
//!   processor, point-to-point crossbeam channels, and the quorum-based
//!   `communicate(propagate / collect)` primitive implemented with actual
//!   request/reply traffic (ABND95).
//! * [`SharedRegisters`] — the **in-process concurrent** backend: the
//!   registers as real shared state behind sharded locks, where `propagate`
//!   is a locked merge and `collect` an atomic copy-on-write snapshot; see
//!   [`shm`].
//!
//! Asynchrony comes from the operating-system scheduler; additional jitter
//! can be injected per message ([`RuntimeConfig::with_max_delay_micros`]) and
//! a minority of nodes can be made unresponsive to exercise the `t < n/2`
//! fault tolerance ([`RuntimeConfig::with_unresponsive`]).
//!
//! The concurrent backend can also run under **schedule control**
//! ([`sched`], [`run_scheduled`]): participant threads park at
//! [`fle_model::SchedulePoint`] gates and a pluggable [`GateScheduler`]
//! chooses the interleaving, turning real-thread executions deterministic,
//! adversary-drivable and replayable — the bridge `fle-explore` uses to hunt
//! this backend with the same strategies and oracles as the simulator.
//!
//! # Example
//!
//! ```
//! use fle_core::LeaderElection;
//! use fle_model::ProcId;
//! use fle_runtime::{RuntimeConfig, ThreadedRuntime};
//!
//! let config = RuntimeConfig::new(4);
//! let participants = (0..4)
//!     .map(|i| {
//!         let p = ProcId(i);
//!         (p, Box::new(LeaderElection::new(p)) as Box<dyn fle_model::Protocol + Send>)
//!     })
//!     .collect();
//! let report = ThreadedRuntime::new(config).run(participants).unwrap();
//! assert_eq!(report.winners().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod faulty;
pub mod node;
pub mod report;
pub mod sched;
pub mod shm;

use crossbeam_channel::{unbounded, RecvTimeoutError, Sender};
pub use exec::{
    run_gated, run_gated_fifo, ExecReport, ExecResult, Executor, ExecutorConfig, ExecutorStats,
    InFlight,
};
pub use faulty::{
    drive_faulty, drive_scheduled_faulty, run_concurrent_cancellable, run_concurrent_faulty,
    CrashMode, CrashSpec, CrashVictim, FaultPlan, FaultStats, FaultyMemory,
};
use fle_model::{CancelToken, ProcId, Protocol};
use node::{Envelope, NodeResult, NodeRunner};
pub use report::RuntimeReport;
pub use sched::{
    run_scheduled, run_scheduled_faulty, FifoScheduler, GateCommand, GateObservation,
    GateScheduler, ScheduleConfig, ScheduleController, ScheduledProgress, ScheduledReport,
    WaitingAt,
};
pub use shm::{run_concurrent, GatedRegisterHandle, RegisterHandle, SharedRegisters};
use std::error::Error;
use std::fmt;
use std::thread;
use std::time::Duration;

/// Configuration of a threaded execution.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of processors (threads).
    pub n: usize,
    /// Seed from which each node derives its RNG.
    pub seed: u64,
    /// Maximum artificial delay, in microseconds, injected before handling
    /// each received message (0 disables injection).
    pub max_delay_micros: u64,
    /// Nodes that never answer requests (they model crashed/partitioned
    /// replicas). Must stay below `⌈n/2⌉` for quorums to keep forming.
    pub unresponsive: Vec<ProcId>,
    /// Cooperative cancellation: when the token trips, the coordinator stops
    /// waiting for outcomes and shuts every node down. Defaults to the inert
    /// token (never cancels).
    pub cancel: CancelToken,
}

impl RuntimeConfig {
    /// A configuration with `n` responsive nodes, no artificial delay.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one processor");
        RuntimeConfig {
            n,
            seed: 0,
            max_delay_micros: 0,
            unresponsive: Vec::new(),
            cancel: CancelToken::none(),
        }
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject up to `micros` microseconds of random delay per message.
    #[must_use]
    pub fn with_max_delay_micros(mut self, micros: u64) -> Self {
        self.max_delay_micros = micros;
        self
    }

    /// Mark the given nodes as unresponsive replicas.
    #[must_use]
    pub fn with_unresponsive(mut self, nodes: impl IntoIterator<Item = ProcId>) -> Self {
        self.unresponsive = nodes.into_iter().collect();
        self
    }

    /// Attach a cancellation token; when it trips mid-run the runtime shuts
    /// down and reports whatever outcomes had already landed.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Quorum size (`⌊n/2⌋ + 1`).
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }
}

/// Errors returned by the threaded runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// A participant id was out of range or duplicated.
    InvalidParticipant {
        /// The offending processor.
        proc: ProcId,
        /// What was wrong with it.
        reason: String,
    },
    /// Too many unresponsive nodes: quorums could never form.
    TooManyUnresponsive {
        /// Number of configured unresponsive nodes.
        configured: usize,
        /// Maximum tolerable (`⌈n/2⌉ − 1`).
        tolerable: usize,
    },
    /// A node thread panicked.
    NodePanicked {
        /// The processor whose thread panicked.
        proc: ProcId,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidParticipant { proc, reason } => {
                write!(f, "invalid participant {proc}: {reason}")
            }
            RuntimeError::TooManyUnresponsive {
                configured,
                tolerable,
            } => write!(
                f,
                "{configured} unresponsive nodes exceed the tolerable {tolerable}"
            ),
            RuntimeError::NodePanicked { proc } => write!(f, "node thread for {proc} panicked"),
        }
    }
}

impl Error for RuntimeError {}

/// The threaded runtime. Construct with a [`RuntimeConfig`], then call
/// [`ThreadedRuntime::run`] with one protocol per participating processor.
#[derive(Debug)]
pub struct ThreadedRuntime {
    config: RuntimeConfig,
}

impl ThreadedRuntime {
    /// A runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        ThreadedRuntime { config }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Run the given participants to completion and gather the report.
    ///
    /// # Errors
    /// Returns [`RuntimeError`] if the participant set is invalid, too many
    /// nodes are unresponsive, or a node thread panics.
    pub fn run(
        &self,
        participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    ) -> Result<RuntimeReport, RuntimeError> {
        let n = self.config.n;
        let tolerable = n.div_ceil(2).saturating_sub(1);
        if self.config.unresponsive.len() > tolerable {
            return Err(RuntimeError::TooManyUnresponsive {
                configured: self.config.unresponsive.len(),
                tolerable,
            });
        }

        let mut protocols: Vec<Option<Box<dyn Protocol + Send>>> = (0..n).map(|_| None).collect();
        let mut participant_ids = Vec::new();
        for (proc, protocol) in participants {
            if proc.index() >= n {
                return Err(RuntimeError::InvalidParticipant {
                    proc,
                    reason: format!("system only has {n} processors"),
                });
            }
            if protocols[proc.index()].is_some() {
                return Err(RuntimeError::InvalidParticipant {
                    proc,
                    reason: "already registered".to_string(),
                });
            }
            protocols[proc.index()] = Some(protocol);
            participant_ids.push(proc);
        }

        // One inbox per node; every node knows every sender.
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let (done_tx, done_rx) = unbounded::<ProcId>();

        let mut handles = Vec::with_capacity(n);
        for (index, receiver) in receivers.into_iter().enumerate() {
            let proc = ProcId(index);
            let runner = NodeRunner::new(
                proc,
                self.config.clone(),
                senders.clone(),
                receiver,
                protocols[index].take(),
                done_tx.clone(),
            );
            let handle = thread::Builder::new()
                .name(format!("fle-node-{index}"))
                .spawn(move || runner.run())
                .expect("spawning a node thread never fails on supported platforms");
            handles.push((proc, handle));
        }
        drop(done_tx);

        // Wait until every participant has reported an outcome, then stop all
        // nodes (they keep serving replica requests until told to stop). A
        // cancellable run polls its token between waits; on cancellation the
        // shutdown broadcast below wakes every node, wherever it is blocked.
        let cancel = &self.config.cancel;
        let cancellable = cancel.is_cancellable();
        let mut finished = 0usize;
        while finished < participant_ids.len() {
            if cancellable {
                if cancel.is_cancelled() {
                    break;
                }
                match done_rx.recv_timeout(Duration::from_micros(500)) {
                    Ok(_) => finished += 1,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match done_rx.recv() {
                    Ok(_) => finished += 1,
                    Err(_) => break,
                }
            }
        }
        for sender in &senders {
            let _ = sender.send(Envelope::Shutdown);
        }

        let mut report = RuntimeReport::default();
        for (proc, handle) in handles {
            let NodeResult { outcome, metrics } = handle
                .join()
                .map_err(|_| RuntimeError::NodePanicked { proc })?;
            if let Some(outcome) = outcome {
                report.outcomes.insert(proc, outcome);
            }
            *report.metrics.proc_mut(proc) = metrics;
        }
        Ok(report)
    }
}

/// One [`fle_core::LeaderElection`] participant per processor `0..k` — the
/// participant list every election backend, example and test needs.
pub fn election_participants(k: usize) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
    (0..k)
        .map(|i| {
            let p = ProcId(i);
            (
                p,
                Box::new(fle_core::LeaderElection::new(p)) as Box<dyn Protocol + Send>,
            )
        })
        .collect()
}

/// One [`fle_core::Renaming`] participant per processor `0..k`, renaming into
/// the namespace `1..=namespace`.
pub fn renaming_participants(
    k: usize,
    namespace: usize,
) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
    let config = fle_core::RenamingConfig::new(namespace);
    (0..k)
        .map(|i| {
            let p = ProcId(i);
            (
                p,
                Box::new(fle_core::Renaming::new(p, config)) as Box<dyn Protocol + Send>,
            )
        })
        .collect()
}

/// Convenience: run the paper's leader election on real threads with all `n`
/// processors participating.
///
/// # Errors
/// Propagates [`RuntimeError`] from [`ThreadedRuntime::run`].
pub fn run_threaded_leader_election(n: usize, seed: u64) -> Result<RuntimeReport, RuntimeError> {
    let config = RuntimeConfig::new(n).with_seed(seed);
    ThreadedRuntime::new(config).run(election_participants(n))
}

/// Convenience: run the paper's renaming algorithm on real threads.
///
/// # Errors
/// Propagates [`RuntimeError`] from [`ThreadedRuntime::run`].
pub fn run_threaded_renaming(n: usize, seed: u64) -> Result<RuntimeReport, RuntimeError> {
    let config = RuntimeConfig::new(n).with_seed(seed);
    ThreadedRuntime::new(config).run(renaming_participants(n, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let config = RuntimeConfig::new(5)
            .with_seed(3)
            .with_max_delay_micros(10)
            .with_unresponsive([ProcId(4)]);
        assert_eq!(config.quorum(), 3);
        assert_eq!(config.seed, 3);
        assert_eq!(config.unresponsive, vec![ProcId(4)]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_is_rejected() {
        let _ = RuntimeConfig::new(0);
    }

    #[test]
    fn too_many_unresponsive_nodes_is_an_error() {
        let config = RuntimeConfig::new(4).with_unresponsive([ProcId(1), ProcId(2)]);
        let runtime = ThreadedRuntime::new(config);
        let err = runtime.run(Vec::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::TooManyUnresponsive { .. }));
    }

    #[test]
    fn invalid_participants_are_rejected() {
        let runtime = ThreadedRuntime::new(RuntimeConfig::new(2));
        let p = ProcId(9);
        let err = runtime
            .run(vec![(
                p,
                Box::new(fle_core::LeaderElection::new(p)) as Box<dyn Protocol + Send>,
            )])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidParticipant { .. }));
    }

    #[test]
    fn threaded_leader_election_elects_exactly_one_leader() {
        for seed in 0..3 {
            let report = run_threaded_leader_election(4, seed).expect("runtime completes");
            assert_eq!(report.winners().len(), 1, "seed {seed}");
            assert_eq!(report.outcomes.len(), 4);
        }
    }

    #[test]
    fn threaded_renaming_assigns_unique_names() {
        let report = run_threaded_renaming(4, 11).expect("runtime completes");
        let names: std::collections::BTreeSet<usize> = report.names().values().copied().collect();
        assert_eq!(names.len(), 4, "all four names are distinct");
        assert!(names.iter().all(|&u| (1..=4).contains(&u)));
    }

    #[test]
    fn unresponsive_minority_does_not_block_progress() {
        let n = 5;
        let config = RuntimeConfig::new(n)
            .with_seed(2)
            .with_unresponsive([ProcId(4)]);
        let participants = (0..3)
            .map(|i| {
                let p = ProcId(i);
                (
                    p,
                    Box::new(fle_core::LeaderElection::new(p)) as Box<dyn Protocol + Send>,
                )
            })
            .collect();
        let report = ThreadedRuntime::new(config).run(participants).unwrap();
        assert_eq!(report.winners().len(), 1);
        assert_eq!(report.outcomes.len(), 3);
    }

    #[test]
    fn delay_injection_still_terminates() {
        let config = RuntimeConfig::new(3).with_seed(7).with_max_delay_micros(50);
        let participants = (0..3)
            .map(|i| {
                let p = ProcId(i);
                (
                    p,
                    Box::new(fle_core::LeaderElection::new(p)) as Box<dyn Protocol + Send>,
                )
            })
            .collect();
        let report = ThreadedRuntime::new(config).run(participants).unwrap();
        assert_eq!(report.winners().len(), 1);
        assert!(report.metrics.total_messages() > 0);
    }
}
