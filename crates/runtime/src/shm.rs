//! The in-process concurrent shared-memory backend: registers as real shared
//! state.
//!
//! The paper's model is asynchronous *shared memory*; the message-passing
//! `communicate(propagate / collect)` emulation exists to implement it over a
//! network (ABND95). In a single process nothing forces the emulation: this
//! backend keeps one authoritative copy of every register in a
//! [`SharedRegisters`] bank — copy-on-write [`View`]s sharded across
//! fine-grained locks — and implements the [`SharedMemory`] contract
//! directly: `propagate` is a merge under the owning shard's lock, `collect`
//! is an atomic copy-on-write snapshot (a refcount bump). Quorums are
//! trivially satisfied (the one true copy *is* the majority), so contention
//! comes from the hardware — threads racing for shard locks — rather than
//! from emulated message interleavings.
//!
//! Register banks are **namespaced**: every value lives under a caller-chosen
//! `namespace` key, so thousands of protocol instances can share one bank
//! without colliding (the sharded service in `fle-service` maps one instance
//! to one namespace) and a finished instance's registers can be retired in
//! O(1) with [`SharedRegisters::retire`]. All of a namespace's registers live
//! in a single shard, which makes retirement atomic and keeps one instance's
//! cache traffic on one lock.
//!
//! # Example
//!
//! ```
//! use fle_core::LeaderElection;
//! use fle_model::ProcId;
//! use fle_runtime::{election_participants, run_concurrent, SharedRegisters};
//! use std::sync::Arc;
//!
//! let registers = Arc::new(SharedRegisters::new(8));
//! let report = run_concurrent(&registers, 0, 42, election_participants(4));
//! assert_eq!(report.winners().len(), 1);
//! ```

use crate::report::RuntimeReport;
use fle_model::{
    splitmix64, CollectedViews, InstanceId, Key, Outcome, ProcId, ProcessMetrics, Protocol,
    SharedMemory, Value, View,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// One shard of the register bank: the namespaces it owns, each mapping
/// register instances to copy-on-write views.
type Shard = Mutex<HashMap<u64, BTreeMap<InstanceId, Arc<View>>>>;

/// A sharded, namespaced bank of shared registers.
///
/// Cloneable handles are obtained with [`SharedRegisters::handle`]; each
/// handle implements [`SharedMemory`] for one processor of one namespace.
#[derive(Debug)]
pub struct SharedRegisters {
    shards: Vec<Shard>,
    /// Shared empty view handed out for never-written instances, so a
    /// collect of an untouched register allocates nothing.
    empty: Arc<View>,
}

impl SharedRegisters {
    /// A register bank with `shards` independent locks (0 is clamped to 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        SharedRegisters {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            empty: Arc::new(View::new()),
        }
    }

    /// The number of independent lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, namespace: u64) -> &Shard {
        &self.shards[(splitmix64(namespace) as usize) % self.shards.len()]
    }

    /// Merge `value` into the register `key` of `namespace`, linearizably.
    pub fn write(&self, namespace: u64, key: Key, value: &Value) {
        let mut shard = self
            .shard(namespace)
            .lock()
            .expect("no register write panics while holding the lock");
        let view = shard
            .entry(namespace)
            .or_default()
            .entry(key.instance)
            .or_insert_with(|| Arc::new(View::new()));
        Arc::make_mut(view).insert(key.slot, value.clone());
    }

    /// Merge a batch of writes, taking the shard lock once.
    pub fn write_all(&self, namespace: u64, entries: &[(Key, Value)]) {
        if entries.is_empty() {
            return;
        }
        let mut shard = self
            .shard(namespace)
            .lock()
            .expect("no register write panics while holding the lock");
        let bank = shard.entry(namespace).or_default();
        for (key, value) in entries {
            let view = bank
                .entry(key.instance)
                .or_insert_with(|| Arc::new(View::new()));
            Arc::make_mut(view).insert(key.slot, value.clone());
        }
    }

    /// An atomic copy-on-write snapshot of `instance` in `namespace`: a
    /// refcount bump under the shard lock; the slot array is only copied if a
    /// writer lands on the same instance while the snapshot is alive.
    pub fn snapshot(&self, namespace: u64, instance: InstanceId) -> Arc<View> {
        let shard = self
            .shard(namespace)
            .lock()
            .expect("no register read panics while holding the lock");
        shard
            .get(&namespace)
            .and_then(|bank| bank.get(&instance))
            .cloned()
            .unwrap_or_else(|| self.empty.clone())
    }

    /// Drop every register of `namespace`; returns whether anything existed.
    /// O(instances of that namespace), independent of every other namespace.
    pub fn retire(&self, namespace: u64) -> bool {
        self.shard(namespace)
            .lock()
            .expect("no register access panics while holding the lock")
            .remove(&namespace)
            .is_some()
    }

    /// Number of live (written, not retired) namespaces across all shards.
    pub fn live_namespaces(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("no register access panics while holding the lock")
                    .len()
            })
            .sum()
    }

    /// A [`SharedMemory`] handle for processor `me` of `namespace`, with its
    /// coin flips seeded from `seed` (mixed with the namespace, so parallel
    /// instances sharing one bank draw independent streams).
    pub fn handle(self: &Arc<Self>, namespace: u64, me: ProcId, seed: u64) -> RegisterHandle {
        self.handle_seeded(namespace, me, seed.wrapping_add(splitmix64(namespace)))
    }

    /// A handle whose coin stream ignores the namespace: seeded exactly like
    /// `fle_sim::SimMemory` (`seed + me·0x9e37`). Used by the
    /// schedule-controlled runner ([`crate::run_scheduled`]) so that a fully
    /// sequentialized gated run draws the same coins as the sequential
    /// simulator adapter and the two can be compared outcome-for-outcome.
    pub fn handle_seeded(
        self: &Arc<Self>,
        namespace: u64,
        me: ProcId,
        seed: u64,
    ) -> RegisterHandle {
        RegisterHandle {
            registers: Arc::clone(self),
            namespace,
            me,
            rng: ChaCha8Rng::seed_from_u64(seed.wrapping_add(me.index() as u64 * 0x9e37)),
            metrics: ProcessMetrics::default(),
        }
    }
}

/// One processor's handle onto a [`SharedRegisters`] bank: the concurrent
/// implementation of the [`SharedMemory`] contract.
#[derive(Debug)]
pub struct RegisterHandle {
    registers: Arc<SharedRegisters>,
    namespace: u64,
    me: ProcId,
    rng: ChaCha8Rng,
    metrics: ProcessMetrics,
}

impl RegisterHandle {
    /// The complexity counters accumulated by this handle. The concurrent
    /// backend sends no messages, so only `communicate_calls` and
    /// `coin_flips` are ever non-zero.
    pub fn metrics(&self) -> ProcessMetrics {
        self.metrics
    }

    /// The processor this handle belongs to.
    pub fn proc(&self) -> ProcId {
        self.me
    }
}

impl SharedMemory for RegisterHandle {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        self.metrics.communicate_calls += 1;
        self.registers.write_all(self.namespace, &entries);
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        self.metrics.communicate_calls += 1;
        // The one true copy stands in for a quorum of replica views: a
        // single atomic snapshot is a refinement of any set of quorum views
        // (it is the join of everything any quorum could have reported).
        let snapshot = self.registers.snapshot(self.namespace, instance);
        CollectedViews::from_shared(vec![(self.me, snapshot)])
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        self.metrics.coin_flips += 1;
        self.rng.gen_bool(prob_one.clamp(0.0, 1.0))
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        self.metrics.coin_flips += 1;
        if choices.is_empty() {
            0
        } else {
            choices[self.rng.gen_range(0..choices.len())]
        }
    }
}

/// A [`RegisterHandle`] whose every operation passes through a
/// [`crate::sched::ScheduleController`] gate: the schedule-controlled face
/// of the concurrent backend.
///
/// The handle performs the *same* operations as an ungated
/// [`RegisterHandle`] — the same sharded locks, the same copy-on-write
/// snapshots, the same coin stream — but announces each one as a
/// [`fle_model::SchedulePoint`] first and blocks until the controller grants
/// it, which is how `fle_runtime::run_scheduled` serializes real threads
/// under an adversary-chosen interleaving. Constructed only by
/// [`crate::run_scheduled`].
#[derive(Debug)]
pub struct GatedRegisterHandle<'c> {
    inner: RegisterHandle,
    controller: &'c crate::sched::ScheduleController,
    slot: usize,
}

impl<'c> GatedRegisterHandle<'c> {
    pub(crate) fn new(
        inner: RegisterHandle,
        controller: &'c crate::sched::ScheduleController,
        slot: usize,
    ) -> Self {
        GatedRegisterHandle {
            inner,
            controller,
            slot,
        }
    }
}

impl fle_model::SharedMemory for GatedRegisterHandle<'_> {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        self.inner.propagate(entries);
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        self.inner.collect(instance)
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        self.inner.flip(prob_one)
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        self.inner.choose(choices)
    }
}

impl fle_model::ScheduledMemory for GatedRegisterHandle<'_> {
    fn reach(
        &mut self,
        point: fle_model::SchedulePoint,
        state: fle_model::LocalStateView,
    ) -> fle_model::GateVerdict {
        self.controller.reach(self.slot, point, state)
    }
}

/// Run one protocol instance on the concurrent backend: one OS thread per
/// participant, all hammering the same shared registers under `namespace`.
///
/// The registers written under `namespace` are left in place so the caller
/// can inspect them; retire them with [`SharedRegisters::retire`] when done.
pub fn run_concurrent(
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
) -> RuntimeReport {
    let results: Vec<(ProcId, Outcome, ProcessMetrics)> = std::thread::scope(|scope| {
        let handles: Vec<_> = participants
            .into_iter()
            .map(|(proc, mut protocol)| {
                let mut memory = registers.handle(namespace, proc, seed);
                scope.spawn(move || {
                    let outcome = fle_model::drive(protocol.as_mut(), &mut memory);
                    (proc, outcome, memory.metrics())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("participant threads propagate panics to the caller")
            })
            .collect()
    });

    let mut report = RuntimeReport::default();
    for (proc, outcome, metrics) in results {
        report.outcomes.insert(proc, outcome);
        *report.metrics.proc_mut(proc) = metrics;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::election_participants;
    use fle_core::{Renaming, RenamingConfig};
    use fle_model::Slot;

    #[test]
    fn writes_round_trip_through_snapshots() {
        let registers = SharedRegisters::new(4);
        let key = Key::name(InstanceId::Contended, 3);
        registers.write(7, key, &Value::Flag(true));
        let snapshot = registers.snapshot(7, InstanceId::Contended);
        assert_eq!(
            snapshot.get(&Slot::Name(3)).and_then(Value::as_flag),
            Some(true)
        );
        // Another namespace sees nothing: no cross-instance leakage.
        assert!(registers.snapshot(8, InstanceId::Contended).is_empty());
        assert_eq!(registers.live_namespaces(), 1);
    }

    #[test]
    fn retire_drops_exactly_one_namespace() {
        let registers = SharedRegisters::new(2);
        for namespace in 0..10u64 {
            registers.write(
                namespace,
                Key::global(InstanceId::Contended),
                &Value::Flag(true),
            );
        }
        assert_eq!(registers.live_namespaces(), 10);
        assert!(registers.retire(4));
        assert!(!registers.retire(4), "retiring twice finds nothing");
        assert_eq!(registers.live_namespaces(), 9);
        assert!(registers.snapshot(4, InstanceId::Contended).is_empty());
        assert!(!registers.snapshot(5, InstanceId::Contended).is_empty());
    }

    #[test]
    fn snapshots_are_stable_under_later_writes() {
        let registers = SharedRegisters::new(1);
        registers.write(0, Key::name(InstanceId::Contended, 0), &Value::Flag(true));
        let before = registers.snapshot(0, InstanceId::Contended);
        registers.write(0, Key::name(InstanceId::Contended, 1), &Value::Flag(true));
        assert_eq!(
            before.len(),
            1,
            "the snapshot must not observe later writes"
        );
        assert_eq!(registers.snapshot(0, InstanceId::Contended).len(), 2);
    }

    #[test]
    fn concurrent_election_elects_exactly_one_leader() {
        let registers = Arc::new(SharedRegisters::new(4));
        for seed in 0..5u64 {
            let report = run_concurrent(&registers, seed, seed, election_participants(8));
            assert_eq!(report.winners().len(), 1, "seed {seed}");
            assert_eq!(report.outcomes.len(), 8);
            registers.retire(seed);
        }
        assert_eq!(registers.live_namespaces(), 0);
    }

    #[test]
    fn concurrent_renaming_assigns_unique_tight_names() {
        let registers = Arc::new(SharedRegisters::new(4));
        let n = 6;
        let config = RenamingConfig::new(n);
        let participants = (0..n)
            .map(|i| {
                let p = ProcId(i);
                (
                    p,
                    Box::new(Renaming::new(p, config)) as Box<dyn Protocol + Send>,
                )
            })
            .collect();
        let report = run_concurrent(&registers, 1, 9, participants);
        let names: std::collections::BTreeSet<usize> = report.names().values().copied().collect();
        assert_eq!(names.len(), n, "all names distinct");
        assert!(names.iter().all(|&u| (1..=n).contains(&u)));
    }

    #[test]
    fn namespaces_isolate_concurrent_instances() {
        // Two elections with identical seeds in different namespaces of the
        // same bank: each elects exactly one winner and neither observes the
        // other's registers.
        let registers = Arc::new(SharedRegisters::new(1));
        let left = run_concurrent(&registers, 100, 3, election_participants(4));
        let right = run_concurrent(&registers, 200, 3, election_participants(4));
        assert_eq!(left.winners().len(), 1);
        assert_eq!(right.winners().len(), 1);
        assert_eq!(registers.live_namespaces(), 2);
    }
}
