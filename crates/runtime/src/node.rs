//! The per-node thread: replica service plus protocol driver.
//!
//! A node is two things at once: a **replica** that answers
//! `propagate`/`collect` requests for every register instance, and — when it
//! participates — a **processor** driving its protocol state machine. The
//! protocol side is expressed through the [`SharedMemory`] contract: the
//! node implements `propagate`/`collect` by broadcasting the corresponding
//! [`WireMessage`]s and serving its inbox until a quorum has answered, and
//! the protocol itself is advanced by the backend-agnostic
//! [`fle_model::drive`] loop. While a communicate call is outstanding the
//! node keeps serving replica requests from other nodes, so quorums always
//! form as long as a majority of nodes is responsive.

use crate::RuntimeConfig;
use crossbeam_channel::{Receiver, Sender};
use fle_model::wire::CallSeq;
use fle_model::{
    CollectCache, CollectedViews, InstanceId, Key, Outcome, ProcId, ProcessMetrics, Protocol,
    ReplicaStore, SharedMemory, Value, View, WireMessage,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// A message travelling between node threads.
#[derive(Debug)]
pub enum Envelope {
    /// A protocol message from another node.
    Wire {
        /// The sending node.
        from: ProcId,
        /// The payload.
        message: WireMessage,
    },
    /// Orderly shutdown request from the coordinator.
    Shutdown,
}

/// What a node thread hands back to the coordinator when it stops.
#[derive(Debug)]
pub struct NodeResult {
    /// The protocol outcome, if this node participated.
    pub outcome: Option<Outcome>,
    /// The node's complexity counters.
    pub metrics: ProcessMetrics,
}

/// State of the outstanding communicate call, if any.
///
/// The quorum state machine: a `Propagate` counts acknowledgements
/// (including the implicit self-ack), a `Collect` accumulates one view per
/// responder (including the own replica's view), and replies are accepted
/// only when their sequence number matches the outstanding call — stale
/// replies from a completed call are dropped, and collect replies are
/// additionally deduplicated by responder (acks need no responder tracking:
/// the transport produces exactly one ack per propagate per peer).
#[derive(Debug)]
pub(crate) enum Outstanding {
    /// No communicate call in flight.
    None,
    /// A `Propagate` awaiting acknowledgements.
    Acks {
        /// Sequence number of the call.
        seq: CallSeq,
        /// Acknowledgements received so far (self included).
        received: usize,
    },
    /// A `Collect` awaiting views.
    Views {
        /// Sequence number of the call.
        seq: CallSeq,
        /// One view per responder that has answered (self included).
        views: Vec<(ProcId, Arc<View>)>,
    },
}

/// A node thread: serves its replica to everyone and, if it participates,
/// drives its protocol state machine by performing communicate calls.
pub struct NodeRunner {
    me: ProcId,
    config: RuntimeConfig,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    protocol: Option<Box<dyn Protocol + Send>>,
    done_tx: Sender<ProcId>,
    replica: ReplicaStore,
    rng: ChaCha8Rng,
    metrics: ProcessMetrics,
    next_seq: CallSeq,
    outstanding: Outstanding,
    /// Requester-side delta-collect state: per responder, the most recent
    /// view received for the instance currently being collected.
    collect_cache: CollectCache,
    outcome: Option<Outcome>,
    unresponsive: bool,
    /// Set when the inbox disconnects or a shutdown arrives while a
    /// communicate call is outstanding; the wait loops stop blocking.
    stopped: bool,
}

impl NodeRunner {
    /// Build the runner for node `me`.
    pub fn new(
        me: ProcId,
        config: RuntimeConfig,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        protocol: Option<Box<dyn Protocol + Send>>,
        done_tx: Sender<ProcId>,
    ) -> Self {
        let unresponsive = config.unresponsive.contains(&me);
        let rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(me.index() as u64 * 0x9e37));
        NodeRunner {
            me,
            config,
            senders,
            inbox,
            protocol,
            done_tx,
            replica: ReplicaStore::new(),
            rng,
            metrics: ProcessMetrics::default(),
            next_seq: 0,
            outstanding: Outstanding::None,
            collect_cache: CollectCache::new(),
            outcome: None,
            unresponsive,
            stopped: false,
        }
    }

    /// Run the node until shutdown; returns the outcome and metrics.
    pub fn run(mut self) -> NodeResult {
        // Drive the protocol to completion, if any; the SharedMemory
        // implementation below keeps serving replica requests while its
        // communicate calls wait for quorums.
        if let Some(mut protocol) = self.protocol.take() {
            if !self.unresponsive {
                let outcome = fle_model::drive(protocol.as_mut(), &mut self);
                self.outstanding = Outstanding::None;
                // An outcome reached after the coordinator abandoned the
                // execution (`stopped`) was computed from fabricated
                // communicate results while the protocol unwound; never
                // report it as genuine.
                if !self.stopped {
                    self.outcome = Some(outcome);
                    let _ = self.done_tx.send(self.me);
                }
            }
        }

        // Serve replica requests until the coordinator shuts us down.
        while !self.stopped {
            match self.inbox.recv() {
                Ok(Envelope::Shutdown) | Err(_) => break,
                Ok(Envelope::Wire { from, message }) => {
                    self.maybe_delay();
                    self.handle_wire(from, message);
                }
            }
        }

        NodeResult {
            outcome: self.outcome,
            metrics: self.metrics,
        }
    }

    fn maybe_delay(&mut self) {
        if self.config.max_delay_micros > 0 {
            let delay = self.rng.gen_range(0..=self.config.max_delay_micros);
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
        }
    }

    /// Serve the inbox until the outstanding communicate call has gathered a
    /// quorum, then hand back its result.
    ///
    /// A shutdown or a disconnected inbox while waiting means the
    /// coordinator has abandoned the execution; the call completes with
    /// whatever was gathered so the protocol can unwind instead of blocking
    /// forever.
    fn await_quorum(&mut self) -> Outstanding {
        while !self.quorum_reached() && !self.stopped {
            match self.inbox.recv() {
                Ok(Envelope::Wire { from, message }) => {
                    self.maybe_delay();
                    self.handle_wire(from, message);
                }
                Ok(Envelope::Shutdown) | Err(_) => self.stopped = true,
            }
        }
        std::mem::replace(&mut self.outstanding, Outstanding::None)
    }

    fn handle_wire(&mut self, from: ProcId, message: WireMessage) {
        self.metrics.messages_received += 1;
        match message {
            WireMessage::Propagate { seq, entries } => {
                self.replica.apply_all(&entries);
                if !self.unresponsive {
                    self.send(from, WireMessage::Ack { seq });
                }
            }
            WireMessage::Collect {
                seq,
                instance,
                known,
            } => {
                if !self.unresponsive {
                    let view = self.replica.transfer_since(instance, known);
                    self.send(from, WireMessage::CollectReply { seq, view });
                }
            }
            WireMessage::Ack { seq } => {
                if let Outstanding::Acks {
                    seq: want,
                    received,
                } = &mut self.outstanding
                {
                    if *want == seq {
                        *received += 1;
                    }
                }
            }
            WireMessage::CollectReply { seq, view } => {
                if let Outstanding::Views { seq: want, views } = &mut self.outstanding {
                    // Resolve against the delta cache only when the reply is
                    // actually recorded, so stale or duplicate replies never
                    // perturb the cached versions.
                    if *want == seq && !views.iter().any(|(p, _)| *p == from) {
                        let view = self.collect_cache.resolve(from, view);
                        views.push((from, view));
                    }
                }
            }
        }
    }

    fn quorum_reached(&self) -> bool {
        let quorum = self.config.quorum();
        match &self.outstanding {
            Outstanding::None => false,
            Outstanding::Acks { received, .. } => *received >= quorum,
            Outstanding::Views { views, .. } => views.len() >= quorum,
        }
    }

    /// Owned copy of the replica's view (test helper; the hot paths use the
    /// copy-on-write `view_arc`/`transfer_since` instead).
    #[cfg(test)]
    fn view_of(&self, instance: InstanceId) -> View {
        self.replica.view_of(instance)
    }

    fn broadcast(&mut self, message: WireMessage) {
        for index in 0..self.config.n {
            if index == self.me.index() {
                continue;
            }
            self.send(ProcId(index), message.clone());
        }
    }

    fn send(&mut self, to: ProcId, message: WireMessage) {
        self.metrics.messages_sent += 1;
        let _ = self.senders[to.index()].send(Envelope::Wire {
            from: self.me,
            message,
        });
    }
}

impl SharedMemory for NodeRunner {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        self.metrics.communicate_calls += 1;
        self.next_seq += 1;
        let seq = self.next_seq;
        // The own replica absorbs the writes immediately: the implicit
        // self-acknowledgement below.
        self.replica.apply_all(&entries);
        self.outstanding = Outstanding::Acks { seq, received: 1 };
        // The entry list is built once; every send of the broadcast clones
        // only the refcount.
        self.broadcast(WireMessage::Propagate {
            seq,
            entries: entries.into(),
        });
        let _ = self.await_quorum();
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        self.metrics.communicate_calls += 1;
        self.next_seq += 1;
        let seq = self.next_seq;
        let own_view = self.replica.view_arc(instance);
        self.outstanding = Outstanding::Views {
            seq,
            views: vec![(self.me, own_view)],
        };
        self.collect_cache.prepare(instance, self.config.n);
        // Each responder learns which of its versions we already hold, so it
        // can reply with a delta.
        for index in 0..self.config.n {
            if index == self.me.index() {
                continue;
            }
            let known = self.collect_cache.known(ProcId(index));
            self.send(
                ProcId(index),
                WireMessage::Collect {
                    seq,
                    instance,
                    known,
                },
            );
        }
        match self.await_quorum() {
            Outstanding::Views { views, .. } => CollectedViews::from_shared(views),
            _ => CollectedViews::default(),
        }
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        self.metrics.coin_flips += 1;
        self.rng.gen_bool(prob_one.clamp(0.0, 1.0))
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        self.metrics.coin_flips += 1;
        if choices.is_empty() {
            0
        } else {
            choices[self.rng.gen_range(0..choices.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;
    use fle_model::wire::ViewTransfer;
    use fle_model::InstanceId;

    fn test_node(
        n: usize,
        me: ProcId,
        config: RuntimeConfig,
    ) -> (NodeRunner, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let inbox = receivers.remove(me.index());
        let (done_tx, _done_rx) = unbounded();
        let node = NodeRunner::new(me, config, senders, inbox, None, done_tx);
        // `receivers` now holds the inboxes of every *other* node, in id
        // order with `me` removed.
        (node, receivers)
    }

    #[test]
    fn replica_view_filters_by_instance() {
        let (mut node, _peers) = test_node(1, ProcId(0), RuntimeConfig::new(1));
        let door = InstanceId::door(fle_model::ElectionContext::Standalone);
        node.replica.apply(Key::global(door), &Value::Flag(true));
        node.replica
            .apply(Key::name(InstanceId::Contended, 2), &Value::Flag(true));
        assert_eq!(node.view_of(door).len(), 1);
        assert_eq!(node.view_of(InstanceId::Contended).len(), 1);
        assert!(node
            .view_of(InstanceId::round(fle_model::ElectionContext::Standalone))
            .is_empty());
    }

    #[test]
    fn unresponsive_nodes_absorb_requests_silently() {
        let (mut node, peers) = test_node(
            2,
            ProcId(1),
            RuntimeConfig::new(2).with_unresponsive([ProcId(1)]),
        );
        node.handle_wire(
            ProcId(0),
            WireMessage::Propagate {
                seq: 1,
                entries: vec![(Key::name(InstanceId::Contended, 0), Value::Flag(true))].into(),
            },
        );
        // The write is applied (messages still reach faulty processors)...
        assert_eq!(node.view_of(InstanceId::Contended).len(), 1);
        // ...but no acknowledgement is produced.
        assert!(peers[0].try_recv().is_err());
        assert_eq!(node.metrics.messages_sent, 0);
        assert_eq!(node.metrics.messages_received, 1);
    }

    #[test]
    fn acks_count_only_for_the_outstanding_sequence_number() {
        let (mut node, _peers) = test_node(5, ProcId(0), RuntimeConfig::new(5));
        node.outstanding = Outstanding::Acks {
            seq: 7,
            received: 1,
        };
        // A stale ack from an earlier call is ignored.
        node.handle_wire(ProcId(1), WireMessage::Ack { seq: 6 });
        assert!(matches!(
            node.outstanding,
            Outstanding::Acks { received: 1, .. }
        ));
        assert!(!node.quorum_reached());
        // Matching acks accumulate; quorum for n = 5 is 3.
        node.handle_wire(ProcId(1), WireMessage::Ack { seq: 7 });
        assert!(!node.quorum_reached());
        node.handle_wire(ProcId(2), WireMessage::Ack { seq: 7 });
        assert!(matches!(
            node.outstanding,
            Outstanding::Acks { received: 3, .. }
        ));
        assert!(node.quorum_reached());
    }

    #[test]
    fn duplicate_and_stale_collect_replies_are_dropped() {
        let (mut node, _peers) = test_node(3, ProcId(0), RuntimeConfig::new(3));
        let instance = InstanceId::Contended;
        node.collect_cache.prepare(instance, 3);
        node.outstanding = Outstanding::Views {
            seq: 2,
            views: vec![(ProcId(0), Arc::new(View::new()))],
        };
        let reply = |seq| WireMessage::CollectReply {
            seq,
            view: ViewTransfer::Full(Arc::new(View::new())),
        };
        // A reply for a completed call's sequence number is ignored.
        node.handle_wire(ProcId(1), reply(1));
        assert!(!node.quorum_reached());
        // The first matching reply from p1 is recorded...
        node.handle_wire(ProcId(1), reply(2));
        assert!(node.quorum_reached());
        // ...and a duplicate from the same responder is not double-counted.
        node.handle_wire(ProcId(1), reply(2));
        match &node.outstanding {
            Outstanding::Views { views, .. } => assert_eq!(views.len(), 2),
            other => panic!("expected an outstanding collect, got {other:?}"),
        }
    }

    #[test]
    fn no_outstanding_call_never_reaches_quorum() {
        let (mut node, _peers) = test_node(1, ProcId(0), RuntimeConfig::new(1));
        assert!(!node.quorum_reached());
        // Replies without an outstanding call are absorbed without panicking.
        node.handle_wire(ProcId(0), WireMessage::Ack { seq: 3 });
        assert!(!node.quorum_reached());
    }

    #[test]
    fn propagate_on_a_lone_node_completes_without_traffic() {
        let (mut node, _peers) = test_node(1, ProcId(0), RuntimeConfig::new(1));
        node.propagate(vec![(
            Key::name(InstanceId::Contended, 0),
            Value::Flag(true),
        )]);
        assert_eq!(node.metrics.communicate_calls, 1);
        assert_eq!(node.metrics.messages_sent, 0);
        assert!(matches!(node.outstanding, Outstanding::None));
        // The own replica absorbed the write; a collect sees it immediately.
        let views = node.collect(InstanceId::Contended);
        assert_eq!(views.len(), 1);
        assert_eq!(views.responses()[0].1.len(), 1);
    }

    #[test]
    fn quorum_of_one_completes_immediately() {
        // A single-node system completes its communicate calls without any
        // network traffic; the protocol runs to completion inside run().
        struct WinOnSecondStep {
            stepped: bool,
        }
        impl Protocol for WinOnSecondStep {
            fn step(&mut self, _response: fle_model::Response) -> fle_model::Action {
                if self.stepped {
                    fle_model::Action::Return(Outcome::Win)
                } else {
                    self.stepped = true;
                    fle_model::Action::Propagate {
                        entries: vec![(Key::name(InstanceId::Contended, 0), Value::Flag(true))],
                    }
                }
            }
            fn adversary_view(&self) -> fle_model::LocalStateView {
                fle_model::LocalStateView::new("win-on-second-step", "x")
            }
        }

        let (tx, rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        // Pre-load a shutdown envelope so `run` terminates after the protocol.
        tx.send(Envelope::Shutdown).unwrap();
        let node = NodeRunner::new(
            ProcId(0),
            RuntimeConfig::new(1),
            vec![tx],
            rx,
            Some(Box::new(WinOnSecondStep { stepped: false })),
            done_tx,
        );
        let result = node.run();
        assert_eq!(result.outcome, Some(Outcome::Win));
        assert_eq!(result.metrics.communicate_calls, 1);
        assert_eq!(done_rx.try_recv().unwrap(), ProcId(0));
    }
}
