//! The per-node thread: replica service plus protocol driver.

use crate::RuntimeConfig;
use crossbeam_channel::{Receiver, Sender};
use fle_model::wire::CallSeq;
use fle_model::{
    Action, CollectCache, CollectedViews, Key, Outcome, ProcId, ProcessMetrics, Protocol,
    ReplicaStore, Response, Value, View, WireMessage,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// A message travelling between node threads.
#[derive(Debug)]
pub enum Envelope {
    /// A protocol message from another node.
    Wire {
        /// The sending node.
        from: ProcId,
        /// The payload.
        message: WireMessage,
    },
    /// Orderly shutdown request from the coordinator.
    Shutdown,
}

/// What a node thread hands back to the coordinator when it stops.
#[derive(Debug)]
pub struct NodeResult {
    /// The protocol outcome, if this node participated.
    pub outcome: Option<Outcome>,
    /// The node's complexity counters.
    pub metrics: ProcessMetrics,
}

/// State of the outstanding communicate call, if any.
enum Outstanding {
    None,
    Acks {
        seq: CallSeq,
        received: usize,
    },
    Views {
        seq: CallSeq,
        views: Vec<(ProcId, Arc<View>)>,
    },
}

/// A node thread: serves its replica to everyone and, if it participates,
/// drives its protocol state machine by performing communicate calls.
pub struct NodeRunner {
    me: ProcId,
    config: RuntimeConfig,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    protocol: Option<Box<dyn Protocol + Send>>,
    done_tx: Sender<ProcId>,
    replica: ReplicaStore,
    rng: ChaCha8Rng,
    metrics: ProcessMetrics,
    next_seq: CallSeq,
    outstanding: Outstanding,
    /// Requester-side delta-collect state: per responder, the most recent
    /// view received for the instance currently being collected.
    collect_cache: CollectCache,
    outcome: Option<Outcome>,
    unresponsive: bool,
}

impl NodeRunner {
    /// Build the runner for node `me`.
    pub fn new(
        me: ProcId,
        config: RuntimeConfig,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        protocol: Option<Box<dyn Protocol + Send>>,
        done_tx: Sender<ProcId>,
    ) -> Self {
        let unresponsive = config.unresponsive.contains(&me);
        let rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(me.index() as u64 * 0x9e37));
        NodeRunner {
            me,
            config,
            senders,
            inbox,
            protocol,
            done_tx,
            replica: ReplicaStore::new(),
            rng,
            metrics: ProcessMetrics::default(),
            next_seq: 0,
            outstanding: Outstanding::None,
            collect_cache: CollectCache::new(),
            outcome: None,
            unresponsive,
        }
    }

    /// Run the node until shutdown; returns the outcome and metrics.
    pub fn run(mut self) -> NodeResult {
        // Kick off the protocol, if any.
        if self.protocol.is_some() && !self.unresponsive {
            self.drive(Response::Start);
        }

        // Serve messages until the coordinator shuts us down.
        loop {
            match self.inbox.recv() {
                Ok(Envelope::Shutdown) | Err(_) => break,
                Ok(Envelope::Wire { from, message }) => {
                    self.maybe_delay();
                    self.handle_wire(from, message);
                }
            }
        }

        NodeResult {
            outcome: self.outcome,
            metrics: self.metrics,
        }
    }

    fn maybe_delay(&mut self) {
        if self.config.max_delay_micros > 0 {
            let delay = self.rng.gen_range(0..=self.config.max_delay_micros);
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
        }
    }

    /// Drive the protocol forward with `response`, executing local actions
    /// (coin flips, returns) immediately and leaving communicate calls
    /// outstanding for [`Self::handle_wire`] to complete.
    fn drive(&mut self, response: Response) {
        let mut response = response;
        loop {
            let Some(protocol) = self.protocol.as_mut() else {
                return;
            };
            let action = protocol.step(response);
            match action {
                Action::Propagate { entries } => {
                    self.metrics.communicate_calls += 1;
                    self.next_seq += 1;
                    let seq = self.next_seq;
                    for (key, value) in &entries {
                        self.apply_write(*key, value);
                    }
                    self.outstanding = Outstanding::Acks { seq, received: 1 };
                    // The entry list is built once; every send of the
                    // broadcast clones only the refcount.
                    self.broadcast(WireMessage::Propagate {
                        seq,
                        entries: entries.into(),
                    });
                    if self.quorum_reached() {
                        response = self.take_completed_response();
                        continue;
                    }
                    return;
                }
                Action::Collect { instance } => {
                    self.metrics.communicate_calls += 1;
                    self.next_seq += 1;
                    let seq = self.next_seq;
                    let own_view = self.replica.view_arc(instance);
                    self.outstanding = Outstanding::Views {
                        seq,
                        views: vec![(self.me, own_view)],
                    };
                    self.collect_cache.prepare(instance, self.config.n);
                    // Each responder learns which of its versions we already
                    // hold, so it can reply with a delta.
                    for index in 0..self.config.n {
                        if index == self.me.index() {
                            continue;
                        }
                        let known = self.collect_cache.known(ProcId(index));
                        self.send(
                            ProcId(index),
                            WireMessage::Collect {
                                seq,
                                instance,
                                known,
                            },
                        );
                    }
                    if self.quorum_reached() {
                        response = self.take_completed_response();
                        continue;
                    }
                    return;
                }
                Action::Flip { prob_one } => {
                    self.metrics.coin_flips += 1;
                    response = Response::Coin(self.rng.gen_bool(prob_one.clamp(0.0, 1.0)));
                }
                Action::Choose { choices } => {
                    self.metrics.coin_flips += 1;
                    let chosen = if choices.is_empty() {
                        0
                    } else {
                        choices[self.rng.gen_range(0..choices.len())]
                    };
                    response = Response::Chosen(chosen);
                }
                Action::Return(outcome) => {
                    self.outcome = Some(outcome);
                    self.outstanding = Outstanding::None;
                    let _ = self.done_tx.send(self.me);
                    return;
                }
            }
        }
    }

    fn handle_wire(&mut self, from: ProcId, message: WireMessage) {
        self.metrics.messages_received += 1;
        match message {
            WireMessage::Propagate { seq, entries } => {
                for (key, value) in entries.iter() {
                    self.apply_write(*key, value);
                }
                if !self.unresponsive {
                    self.send(from, WireMessage::Ack { seq });
                }
            }
            WireMessage::Collect {
                seq,
                instance,
                known,
            } => {
                if !self.unresponsive {
                    let view = self.replica.transfer_since(instance, known);
                    self.send(from, WireMessage::CollectReply { seq, view });
                }
            }
            WireMessage::Ack { seq } => {
                if let Outstanding::Acks {
                    seq: want,
                    received,
                } = &mut self.outstanding
                {
                    if *want == seq {
                        *received += 1;
                    }
                }
                self.maybe_complete();
            }
            WireMessage::CollectReply { seq, view } => {
                if let Outstanding::Views { seq: want, views } = &mut self.outstanding {
                    // Resolve against the delta cache only when the reply is
                    // actually recorded, so stale or duplicate replies never
                    // perturb the cached versions.
                    if *want == seq && !views.iter().any(|(p, _)| *p == from) {
                        let view = self.collect_cache.resolve(from, view);
                        views.push((from, view));
                    }
                }
                self.maybe_complete();
            }
        }
    }

    fn maybe_complete(&mut self) {
        if self.quorum_reached() {
            let response = self.take_completed_response();
            self.drive(response);
        }
    }

    fn quorum_reached(&self) -> bool {
        let quorum = self.config.quorum();
        match &self.outstanding {
            Outstanding::None => false,
            Outstanding::Acks { received, .. } => *received >= quorum,
            Outstanding::Views { views, .. } => views.len() >= quorum,
        }
    }

    fn take_completed_response(&mut self) -> Response {
        match std::mem::replace(&mut self.outstanding, Outstanding::None) {
            Outstanding::Acks { .. } => Response::AckQuorum,
            Outstanding::Views { views, .. } => Response::Views(CollectedViews::from_shared(views)),
            Outstanding::None => Response::AckQuorum,
        }
    }

    fn apply_write(&mut self, key: Key, value: &Value) {
        self.replica.apply(key, value);
    }

    /// Owned copy of the replica's view (test helper; the hot paths use the
    /// copy-on-write `view_arc`/`transfer_since` instead).
    #[cfg(test)]
    fn view_of(&self, instance: fle_model::InstanceId) -> View {
        self.replica.view_of(instance)
    }

    fn broadcast(&mut self, message: WireMessage) {
        for index in 0..self.config.n {
            if index == self.me.index() {
                continue;
            }
            self.send(ProcId(index), message.clone());
        }
    }

    fn send(&mut self, to: ProcId, message: WireMessage) {
        self.metrics.messages_sent += 1;
        let _ = self.senders[to.index()].send(Envelope::Wire {
            from: self.me,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;
    use fle_model::InstanceId;

    #[test]
    fn replica_view_filters_by_instance() {
        let (tx, rx) = unbounded();
        let (done_tx, _done_rx) = unbounded();
        let mut node = NodeRunner::new(
            ProcId(0),
            RuntimeConfig::new(1),
            vec![tx],
            rx,
            None,
            done_tx,
        );
        let door = InstanceId::door(fle_model::ElectionContext::Standalone);
        node.apply_write(Key::global(door), &Value::Flag(true));
        node.apply_write(Key::name(InstanceId::Contended, 2), &Value::Flag(true));
        assert_eq!(node.view_of(door).len(), 1);
        assert_eq!(node.view_of(InstanceId::Contended).len(), 1);
        assert!(node
            .view_of(InstanceId::round(fle_model::ElectionContext::Standalone))
            .is_empty());
    }

    #[test]
    fn unresponsive_nodes_absorb_requests_silently() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (done_tx, _done_rx) = unbounded();
        let mut node = NodeRunner::new(
            ProcId(1),
            RuntimeConfig::new(2).with_unresponsive([ProcId(1)]),
            vec![tx0, tx1],
            rx1,
            None,
            done_tx,
        );
        node.handle_wire(
            ProcId(0),
            WireMessage::Propagate {
                seq: 1,
                entries: vec![(Key::name(InstanceId::Contended, 0), Value::Flag(true))].into(),
            },
        );
        // The write is applied (messages still reach faulty processors)...
        assert_eq!(node.view_of(InstanceId::Contended).len(), 1);
        // ...but no acknowledgement is produced.
        assert!(rx0.try_recv().is_err());
        assert_eq!(node.metrics.messages_sent, 0);
        assert_eq!(node.metrics.messages_received, 1);
    }

    #[test]
    fn quorum_of_one_completes_immediately() {
        // A single-node system completes its communicate calls without any
        // network traffic; the protocol runs to completion inside run().
        struct WinOnSecondStep {
            stepped: bool,
        }
        impl Protocol for WinOnSecondStep {
            fn step(&mut self, _response: Response) -> Action {
                if self.stepped {
                    Action::Return(Outcome::Win)
                } else {
                    self.stepped = true;
                    Action::Propagate {
                        entries: vec![(Key::name(InstanceId::Contended, 0), Value::Flag(true))],
                    }
                }
            }
            fn adversary_view(&self) -> fle_model::LocalStateView {
                fle_model::LocalStateView::new("win-on-second-step", "x")
            }
        }

        let (tx, rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        // Pre-load a shutdown envelope so `run` terminates after the protocol.
        tx.send(Envelope::Shutdown).unwrap();
        let node = NodeRunner::new(
            ProcId(0),
            RuntimeConfig::new(1),
            vec![tx],
            rx,
            Some(Box::new(WinOnSecondStep { stepped: false })),
            done_tx,
        );
        let result = node.run();
        assert_eq!(result.outcome, Some(Outcome::Win));
        assert_eq!(result.metrics.communicate_calls, 1);
        assert_eq!(done_rx.try_recv().unwrap(), ProcId(0));
    }
}
