//! The task-multiplexed cooperative executor: thousands of participants per
//! OS thread.
//!
//! [`run_concurrent`](crate::run_concurrent) spawns one OS thread per
//! participant per instance — realistic, but at the service's measured
//! throughput that is tens of thousands of thread spawns per second, and it
//! is exactly why the density of in-flight instances was capped. This module
//! removes the thread-per-participant cost: a participant is a
//! [`DriveMachine`] plus its protocol and register handle — a few hundred
//! bytes of suspended state — and a small pool of worker threads polls those
//! tasks cooperatively from a shared run queue. One OS thread hosts
//! thousands of participants instead of one.
//!
//! Two execution modes share the pool:
//!
//! * **Free-running** ([`Executor::submit`]): each participant task performs
//!   a bounded burst of shared-memory operations per poll and goes back to
//!   the queue, so instances interleave at operation granularity — the same
//!   concurrency the thread-per-participant backend exhibits, minus the
//!   spawn cost. The instance's [`CancelToken`] is polled before every
//!   operation (every yield point), fail-stop abandonment converts to
//!   [`Outcome::Lose`] exactly as in [`crate::drive_faulty`], and a
//!   panicking task poisons only its own instance's ticket: the worker
//!   thread survives and keeps polling everyone else.
//! * **Gated** ([`run_gated`]): the executor's implementation of the
//!   schedule-gate contract. Instead of blocking a thread in
//!   [`fle_model::ScheduledMemory::reach`], a task *parks* — ownership of
//!   the suspended task moves into its gate slot — and the caller's control
//!   loop (a faithful replica of [`crate::run_scheduled_faulty`]'s) wakes
//!   exactly one task per grant by re-injecting it into the run queue. The
//!   whole exploration stack (strategies, oracles, record/replay, ddmin)
//!   drives the executor's interleavings unchanged, and the run is
//!   deterministic given the scheduler's decisions and the seed,
//!   independent of the worker count.
//!
//! # Determinism ledger (gated mode)
//!
//! *Yield points*: every shared-memory operation plus the final return, the
//! same [`SchedulePoint`]s the thread-per-participant scheduled runner
//! gates. *Wake order*: one task at a time, chosen by the
//! [`GateScheduler`] at quiescence (all live tasks parked), so the waiting
//! set at each decision is a pure function of the grant history. *Seed
//! policy*: participant coins come from
//! [`SharedRegisters::handle_seeded`] (`seed + proc·0x9e37`, the simulator's
//! convention), fault streams from the [`FaultPlan`] seed. Consequently a
//! FIFO-gated executor run is outcome-identical to `fle_sim::SimMemory::
//! run_all` and to [`crate::run_scheduled`], for any number of workers —
//! the differential tests pin all three together.
//!
//! One documented divergence: a task that panics mid-poll is recorded as a
//! *crashed* participant in gated mode (the scheduled runner re-raises the
//! panic instead), because a pooled worker must outlive any one task.

use crate::faulty::{FaultPlan, FaultStats, FaultyMemory};
use crate::sched::{
    FifoScheduler, GateCommand, GateObservation, GateScheduler, ScheduleConfig, ScheduledReport,
    WaitingAt,
};
use crate::shm::{RegisterHandle, SharedRegisters};
use fle_model::{
    CancelToken, DriveMachine, DriveStep, LocalStateView, Op, Outcome, ProcId, Protocol,
    SchedulePoint,
};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

const LOCK: &str = "no executor user panics while holding the lock";

/// Configuration of an [`Executor`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker threads in the pool. 0 is clamped to 1.
    pub workers: usize,
    /// Shared-memory operations one free-running task may perform per poll
    /// before yielding the worker (amortizes run-queue traffic; the cancel
    /// token is still checked before every operation). 0 is clamped to 1.
    pub ops_per_poll: u32,
    /// Start with the workers holding: submitted tasks queue up but none
    /// runs until [`Executor::release`]. Lets a caller stage an entire batch
    /// so the in-flight high-water mark measures *capacity*, not the race
    /// between the submit loop and the pool. Nothing makes progress until
    /// released — don't park a gated run ([`crate::run_gated`]) behind it.
    pub start_paused: bool,
}

impl ExecutorConfig {
    /// `workers` worker threads with the default per-poll operation budget.
    pub fn new(workers: usize) -> Self {
        ExecutorConfig {
            workers,
            ops_per_poll: 8,
            start_paused: false,
        }
    }

    /// Override the per-poll operation budget.
    #[must_use]
    pub fn with_ops_per_poll(mut self, ops_per_poll: u32) -> Self {
        self.ops_per_poll = ops_per_poll;
        self
    }

    /// Hold the workers until [`Executor::release`].
    #[must_use]
    pub fn with_start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        ExecutorConfig::new(workers)
    }
}

/// A point-in-time reading of the executor's load counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Free-running instances currently in flight (submitted, not resolved).
    pub in_flight: usize,
    /// Highest `in_flight` ever observed — the density high-water mark.
    pub peak_in_flight: usize,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// What a free-running instance resolved to.
#[derive(Debug)]
pub enum ExecResult {
    /// Every participant returned; here are the outcomes and the merged
    /// injected-fault counters.
    Completed(ExecReport),
    /// The instance's [`CancelToken`] tripped (or the executor shut down)
    /// before every participant finished. Partial register state may remain
    /// under the instance's namespace — retire it.
    Cancelled,
    /// A participant task panicked; the payload is the panic's. The worker
    /// thread survived and only this instance is poisoned — callers that
    /// contain panics with `catch_unwind` may re-raise the payload with
    /// [`std::panic::resume_unwind`] to preserve their accounting.
    Panicked(Box<dyn Any + Send + 'static>),
}

/// Outcomes of one completed free-running instance.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Outcome per participant.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Injected-fault counters merged over all participants (all zero when
    /// the instance ran under a no-op plan).
    pub faults: FaultStats,
}

impl ExecReport {
    /// Participants that returned [`Outcome::Win`].
    pub fn winners(&self) -> Vec<ProcId> {
        self.outcomes
            .iter()
            .filter(|(_, o)| **o == Outcome::Win)
            .map(|(p, _)| *p)
            .collect()
    }
}

/// A handle on one submitted free-running instance.
#[derive(Debug)]
pub struct InFlight {
    rx: crossbeam_channel::Receiver<ExecResult>,
}

impl InFlight {
    /// Block until the instance resolves.
    pub fn wait(self) -> ExecResult {
        // The sender can only vanish without sending if the executor died
        // mid-resolution; report that as a cancellation, not a panic.
        self.rx.recv().unwrap_or(ExecResult::Cancelled)
    }

    /// Non-blocking probe; `None` while the instance is still in flight.
    pub fn try_wait(&self) -> Option<ExecResult> {
        self.rx.try_recv().ok()
    }
}

/// How a failing instance failed (first failure wins, except that a panic
/// upgrades a mere cancellation: it is strictly more informative).
enum Failure {
    Cancelled,
    Panicked(Box<dyn Any + Send + 'static>),
}

/// State shared by all participant tasks of one free-running instance.
struct InstanceShared {
    cancel: CancelToken,
    /// Fast-path doom flag: set on the first failure so sibling tasks drain
    /// without re-deriving the failure.
    doomed: AtomicBool,
    remaining: AtomicUsize,
    outcomes: Mutex<BTreeMap<ProcId, Outcome>>,
    faults: Mutex<FaultStats>,
    failure: Mutex<Option<Failure>>,
    done: crossbeam_channel::Sender<ExecResult>,
    pool: Arc<Pool>,
    /// Whether fault counters are surfaced in the report. Mirrors the
    /// concurrent runner's dispatch: a no-op plan reports
    /// [`FaultStats::default`], not the decorator's op counts.
    merge_faults: bool,
}

impl InstanceShared {
    fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire) || self.cancel.is_cancelled()
    }

    fn merge_faults(&self, stats: &FaultStats) {
        if !self.merge_faults {
            return;
        }
        match self.faults.lock() {
            Ok(mut guard) => guard.merge(stats),
            Err(poisoned) => poisoned.into_inner().merge(stats),
        }
    }

    fn finish_participant(&self, proc: ProcId, outcome: Outcome, stats: &FaultStats) {
        self.outcomes.lock().expect(LOCK).insert(proc, outcome);
        self.merge_faults(stats);
        self.arrive();
    }

    fn finish_cancelled(&self, stats: &FaultStats) {
        self.doomed.store(true, Ordering::Release);
        let mut failure = self.failure.lock().expect(LOCK);
        if failure.is_none() {
            *failure = Some(Failure::Cancelled);
        }
        drop(failure);
        self.merge_faults(stats);
        self.arrive();
    }

    fn finish_panicked(&self, payload: Box<dyn Any + Send + 'static>) {
        self.doomed.store(true, Ordering::Release);
        let mut failure = match self.failure.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !matches!(*failure, Some(Failure::Panicked(_))) {
            *failure = Some(Failure::Panicked(payload));
        }
        drop(failure);
        self.arrive();
    }

    /// One participant reached a terminal state; the last one to arrive
    /// resolves the instance's ticket.
    fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        let failure = match self.failure.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        let result = match failure {
            Some(Failure::Panicked(payload)) => ExecResult::Panicked(payload),
            Some(Failure::Cancelled) => ExecResult::Cancelled,
            None => ExecResult::Completed(ExecReport {
                outcomes: std::mem::take(&mut *self.outcomes.lock().expect(LOCK)),
                faults: match self.faults.lock() {
                    Ok(guard) => *guard,
                    Err(poisoned) => *poisoned.into_inner(),
                },
            }),
        };
        // Decrement before resolving the ticket, so a waiter that observes
        // the result never sees its own instance still counted in-flight.
        self.pool.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = self.done.send(result);
    }
}

/// One suspended free-running participant: a machine, its protocol, and its
/// (fault-decorated) register handle. This — not an OS thread — is the unit
/// the executor multiplexes.
struct FreeTask {
    instance: Arc<InstanceShared>,
    proc: ProcId,
    machine: DriveMachine,
    protocol: Box<dyn Protocol + Send>,
    memory: FaultyMemory<RegisterHandle>,
}

/// What a granted gated task does when a worker next polls it.
enum GatedPending {
    /// Initial state: step the protocol to its first gate.
    Start,
    /// The gate for this operation was granted: perform it, then step to the
    /// next gate.
    Op(Op),
    /// The `Return` gate was granted: finish with this outcome.
    Outcome(Outcome),
}

/// One suspended gated participant.
struct GatedTask {
    gate: Arc<GateShared>,
    slot: usize,
    machine: DriveMachine,
    protocol: Box<dyn Protocol + Send>,
    memory: FaultyMemory<RegisterHandle>,
    pending: GatedPending,
}

/// The lifecycle of one gated participant slot. Unlike the scheduled
/// runner's thread-backed slots there are no `Granted`/`Doomed` handshake
/// states: granting re-injects the parked task (phase goes straight back to
/// `Running`) and dooming drops it in place.
enum GatePhase {
    /// In the run queue or being polled by a worker.
    Running,
    /// Parked at a gate; `GateSlot::parked` holds the suspended task.
    Waiting(SchedulePoint, LocalStateView),
    /// Returned with the recorded outcome (taken by the harvester).
    Done(Option<Outcome>),
    /// Doomed by the control loop, lost to executor shutdown, or panicked.
    Crashed,
}

struct GateSlot {
    proc: ProcId,
    phase: GatePhase,
    parked: Option<GatedTask>,
    harvested: bool,
}

/// The gate shared by one gated run's tasks and its control loop.
struct GateShared {
    slots: Mutex<Vec<GateSlot>>,
    /// Signalled on every transition out of `Running`, so the control loop
    /// can wait for quiescence.
    quiesce: Condvar,
    fault_totals: Mutex<FaultStats>,
    /// Whether fault counters should be merged (a [`FaultPlan`] was given),
    /// mirroring `run_scheduled_faulty`'s plan-present behavior.
    merge_faults: bool,
}

impl GateShared {
    fn new(procs: &[ProcId], merge_faults: bool) -> Self {
        GateShared {
            slots: Mutex::new(
                procs
                    .iter()
                    .map(|&proc| GateSlot {
                        proc,
                        phase: GatePhase::Running,
                        parked: None,
                        harvested: false,
                    })
                    .collect(),
            ),
            quiesce: Condvar::new(),
            fault_totals: Mutex::new(FaultStats::default()),
            merge_faults,
        }
    }

    fn merge(&self, stats: &FaultStats) {
        if !self.merge_faults {
            return;
        }
        match self.fault_totals.lock() {
            Ok(mut guard) => guard.merge(stats),
            Err(poisoned) => poisoned.into_inner().merge(stats),
        }
    }

    /// Park `task` at its gate: ownership moves into the slot; the control
    /// loop wakes it by re-injecting it into the run queue.
    fn park(&self, point: SchedulePoint, state: LocalStateView, task: GatedTask) {
        let mut slots = self.slots.lock().expect(LOCK);
        let slot = &mut slots[task.slot];
        slot.phase = GatePhase::Waiting(point, state);
        slot.parked = Some(task);
        self.quiesce.notify_all();
    }

    /// A task returned: record its outcome and merge its fault counters.
    fn finish(&self, slot: usize, outcome: Outcome, stats: &FaultStats) {
        self.merge(stats);
        let mut slots = self.slots.lock().expect(LOCK);
        slots[slot].phase = GatePhase::Done(Some(outcome));
        self.quiesce.notify_all();
    }

    /// Terminal fallback: the task panicked or was lost to executor
    /// shutdown; the participant counts as crashed so the control loop never
    /// waits on it forever.
    fn crash_slot(&self, slot: usize) {
        let mut slots = self.slots.lock().expect(LOCK);
        if !matches!(slots[slot].phase, GatePhase::Done(_) | GatePhase::Crashed) {
            slots[slot].phase = GatePhase::Crashed;
            slots[slot].parked = None;
            self.quiesce.notify_all();
        }
    }
}

enum WorkItem {
    Free(FreeTask),
    Gated(GatedTask),
}

struct Queue {
    tasks: VecDeque<WorkItem>,
    shutdown: bool,
    /// While set, workers wait instead of popping — queued work accumulates
    /// until [`Executor::release`] clears it.
    paused: bool,
}

/// Run queue, load counters and worker coordination, shared by all worker
/// threads of one [`Executor`].
struct Pool {
    queue: Mutex<Queue>,
    available: Condvar,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    workers: usize,
    ops_per_poll: u32,
}

impl Pool {
    /// Enqueue `item`, or hand it back (boxed — the error arm is the cold
    /// shutdown path) so the caller can resolve its bookkeeping.
    fn inject(&self, item: WorkItem) -> Result<(), Box<WorkItem>> {
        let mut queue = self.queue.lock().expect(LOCK);
        if queue.shutdown {
            return Err(Box::new(item));
        }
        queue.tasks.push_back(item);
        let paused = queue.paused;
        drop(queue);
        if !paused {
            self.available.notify_one();
        }
        Ok(())
    }

    /// Resolve a work item that can no longer run (shutdown drain).
    fn discard(item: WorkItem) {
        match item {
            WorkItem::Free(task) => task.instance.finish_cancelled(&task.memory.stats()),
            WorkItem::Gated(task) => {
                let gate = Arc::clone(&task.gate);
                let slot = task.slot;
                gate.merge(&task.memory.stats());
                drop(task);
                gate.crash_slot(slot);
            }
        }
    }
}

/// The cooperative executor: a fixed pool of worker threads multiplexing
/// participant tasks from a shared run queue. See the module docs for the
/// two execution modes and the determinism ledger.
pub struct Executor {
    pool: Arc<Pool>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Executor")
            .field("workers", &stats.workers)
            .field("in_flight", &stats.in_flight)
            .finish()
    }
}

impl Executor {
    /// Start a pool with the given configuration.
    pub fn new(config: ExecutorConfig) -> Self {
        let workers = config.workers.max(1);
        let pool = Arc::new(Pool {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
                paused: config.start_paused,
            }),
            available: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            peak_in_flight: AtomicUsize::new(0),
            workers,
            ops_per_poll: config.ops_per_poll.max(1),
        });
        let handles = (0..workers)
            .map(|index| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("fle-exec-{index}"))
                    .spawn(move || worker_loop(&pool))
                    .expect("spawning a worker thread never fails on supported platforms")
            })
            .collect();
        Executor {
            pool,
            handles: Mutex::new(handles),
        }
    }

    /// A pool with the default configuration (one worker per available core,
    /// clamped to 2..=8).
    pub fn with_default_config() -> Self {
        Executor::new(ExecutorConfig::default())
    }

    /// Current load counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            in_flight: self.pool.in_flight.load(Ordering::Acquire),
            peak_in_flight: self.pool.peak_in_flight.load(Ordering::Acquire),
            workers: self.pool.workers,
        }
    }

    /// Submit one free-running instance: `participants` run over the
    /// registers of `namespace` (coins seeded exactly as
    /// [`crate::run_concurrent`]'s, via [`SharedRegisters::handle`]), each
    /// behind a [`FaultyMemory`] under `plan`, with `cancel` polled before
    /// every shared-memory operation.
    ///
    /// Returns immediately; the [`InFlight`] ticket resolves when the last
    /// participant reaches a terminal state. Submission after shutdown
    /// resolves [`ExecResult::Cancelled`].
    pub fn submit(
        &self,
        registers: &Arc<SharedRegisters>,
        namespace: u64,
        seed: u64,
        participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
        plan: &FaultPlan,
        cancel: CancelToken,
    ) -> InFlight {
        let merge_faults = !plan.is_noop();
        let plan = plan.for_namespace(namespace);
        let (done, rx) = crossbeam_channel::unbounded();
        if participants.is_empty() {
            let _ = done.send(ExecResult::Completed(ExecReport::default()));
            return InFlight { rx };
        }
        let now = self.pool.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.pool.peak_in_flight.fetch_max(now, Ordering::AcqRel);
        let instance = Arc::new(InstanceShared {
            cancel,
            doomed: AtomicBool::new(false),
            remaining: AtomicUsize::new(participants.len()),
            outcomes: Mutex::new(BTreeMap::new()),
            faults: Mutex::new(FaultStats::default()),
            failure: Mutex::new(None),
            done,
            pool: Arc::clone(&self.pool),
            merge_faults,
        });
        for (proc, protocol) in participants {
            let task = FreeTask {
                instance: Arc::clone(&instance),
                proc,
                machine: DriveMachine::new(),
                protocol,
                memory: FaultyMemory::new(registers.handle(namespace, proc, seed), proc, plan),
            };
            if let Err(item) = self.pool.inject(WorkItem::Free(task)) {
                Pool::discard(*item);
            }
        }
        InFlight { rx }
    }

    /// Release a pool started with [`ExecutorConfig::with_start_paused`]:
    /// every queued task becomes runnable at once. Idempotent; a no-op on a
    /// pool that was never paused.
    pub fn release(&self) {
        let mut queue = self.pool.queue.lock().expect(LOCK);
        queue.paused = false;
        drop(queue);
        self.pool.available.notify_all();
    }

    /// Enqueue a gated task (or fail it against its slot on shutdown).
    fn inject_gated(&self, task: GatedTask) {
        if let Err(item) = self.pool.inject(WorkItem::Gated(task)) {
            Pool::discard(*item);
        }
    }

    /// Stop the pool: drain the queue (queued free tasks resolve their
    /// instances [`ExecResult::Cancelled`], queued gated tasks crash their
    /// slots), wake and join every worker. Idempotent.
    pub fn shutdown(&self) {
        let drained: Vec<WorkItem> = {
            let mut queue = self.pool.queue.lock().expect(LOCK);
            queue.shutdown = true;
            queue.tasks.drain(..).collect()
        };
        self.pool.available.notify_all();
        for item in drained {
            Pool::discard(item);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock().expect(LOCK));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(pool: &Arc<Pool>) {
    loop {
        let item = {
            let mut queue = pool.queue.lock().expect(LOCK);
            loop {
                if !queue.paused {
                    if let Some(item) = queue.tasks.pop_front() {
                        break item;
                    }
                }
                if queue.shutdown {
                    return;
                }
                queue = pool.available.wait(queue).expect(LOCK);
            }
        };
        match item {
            WorkItem::Free(task) => poll_free(pool, task),
            WorkItem::Gated(task) => poll_gated(task),
        }
    }
}

/// Poll one free-running task for up to `ops_per_poll` operations. The body
/// mirrors [`crate::drive_faulty`] exactly — poll the cancel token, convert
/// abandonment to [`Outcome::Lose`], step, perform — just sliced into
/// resumable bursts. A panic anywhere in the protocol or memory poisons only
/// this task's instance; the worker survives.
fn poll_free(pool: &Arc<Pool>, task: FreeTask) {
    let instance = Arc::clone(&task.instance);
    let polled = catch_unwind(AssertUnwindSafe(move || {
        let mut task = task;
        for _ in 0..pool.ops_per_poll {
            if task.instance.is_doomed() {
                task.instance.finish_cancelled(&task.memory.stats());
                return None;
            }
            if task.memory.abandoned() {
                let stats = task.memory.stats();
                task.instance
                    .finish_participant(task.proc, Outcome::Lose, &stats);
                return None;
            }
            match task.machine.step(task.protocol.as_mut()) {
                DriveStep::Done(outcome) => {
                    let stats = task.memory.stats();
                    task.instance.finish_participant(task.proc, outcome, &stats);
                    return None;
                }
                DriveStep::NeedOp(op) => {
                    let response = op.perform(&mut task.memory);
                    task.machine.resume(response);
                }
            }
        }
        Some(task)
    }));
    match polled {
        Ok(Some(task)) => {
            if let Err(item) = pool.inject(WorkItem::Free(task)) {
                Pool::discard(*item);
            }
        }
        Ok(None) => {}
        Err(payload) => instance.finish_panicked(payload),
    }
}

/// Poll one gated task: execute whatever its last grant authorized, then
/// step the protocol to its next gate and park. The body mirrors
/// [`crate::drive_scheduled_faulty`] — abandonment gates through
/// [`SchedulePoint::Return`] before converting to [`Outcome::Lose`] — except
/// that a panic records the participant as crashed instead of unwinding the
/// caller (a pooled worker must outlive any one task).
fn poll_gated(task: GatedTask) {
    let gate = Arc::clone(&task.gate);
    let slot = task.slot;
    let polled = catch_unwind(AssertUnwindSafe(move || {
        let mut task = task;
        match std::mem::replace(&mut task.pending, GatedPending::Start) {
            GatedPending::Start => {}
            GatedPending::Op(op) => {
                let response = op.perform(&mut task.memory);
                task.machine.resume(response);
            }
            GatedPending::Outcome(outcome) => {
                let stats = task.memory.stats();
                task.gate.finish(task.slot, outcome, &stats);
                return;
            }
        }
        if task.memory.abandoned() {
            let state = task.protocol.adversary_view();
            task.pending = GatedPending::Outcome(Outcome::Lose);
            let gate = Arc::clone(&task.gate);
            gate.park(SchedulePoint::Return, state, task);
            return;
        }
        match task.machine.step(task.protocol.as_mut()) {
            DriveStep::Done(outcome) => {
                let state = task.protocol.adversary_view();
                task.pending = GatedPending::Outcome(outcome);
                let gate = Arc::clone(&task.gate);
                gate.park(SchedulePoint::Return, state, task);
            }
            DriveStep::NeedOp(op) => {
                let state = task.protocol.adversary_view();
                let point = op.point();
                task.pending = GatedPending::Op(op);
                let gate = Arc::clone(&task.gate);
                gate.park(point, state, task);
            }
        }
    }));
    if polled.is_err() {
        gate.crash_slot(slot);
    }
}

/// Run one instance on the executor under an explicit schedule: the
/// executor's implementation of the schedule-gate contract, semantically
/// identical to [`crate::run_scheduled_faulty`] (same grant accounting,
/// crash budget, degradation and stop rules) but hosted on pooled tasks
/// instead of one thread per participant.
///
/// Additionally polls `cancel` at every quiescent decision point: a tripped
/// token aborts the run like a [`GateCommand::Stop`] (every parked task is
/// doomed, the report is marked `stopped`), which is how in-flight
/// cancellation reaches tasks parked at gates.
///
/// Deterministic given (`seed`, scheduler decisions) for **any** worker
/// count: only the granted task runs between decisions, so the waiting set
/// at each quiescent point is a pure function of the grant history.
#[allow(clippy::too_many_arguments)]
pub fn run_gated(
    executor: &Executor,
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    mut participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    config: ScheduleConfig,
    scheduler: &mut dyn GateScheduler,
    plan: Option<FaultPlan>,
    cancel: &CancelToken,
) -> ScheduledReport {
    participants.sort_by_key(|(proc, _)| *proc);
    let procs: Vec<ProcId> = participants.iter().map(|(proc, _)| *proc).collect();
    let gate = Arc::new(GateShared::new(&procs, plan.is_some()));
    let mut report = ScheduledReport::default();

    for (slot, (proc, protocol)) in participants.into_iter().enumerate() {
        let memory = FaultyMemory::new(
            registers.handle_seeded(namespace, proc, seed),
            proc,
            plan.map(|p| p.for_namespace(namespace)).unwrap_or_default(),
        );
        executor.inject_gated(GatedTask {
            gate: Arc::clone(&gate),
            slot,
            machine: DriveMachine::new(),
            protocol,
            memory,
            pending: GatedPending::Start,
        });
    }

    let mut crash_budget_left = config.crash_budget;
    let mut stopping = false;
    loop {
        // Wait for quiescence: every slot parked at a gate or terminal.
        let mut slots = gate.slots.lock().expect(LOCK);
        while slots.iter().any(|s| matches!(s.phase, GatePhase::Running)) {
            slots = gate.quiesce.wait(slots).expect(LOCK);
        }

        // Harvest terminal transitions into the progress report.
        for slot in slots.iter_mut() {
            if slot.harvested {
                continue;
            }
            match &mut slot.phase {
                GatePhase::Done(outcome) => {
                    let outcome = outcome.take().expect("outcomes are harvested once");
                    report.progress.outcomes.insert(slot.proc, outcome);
                    report
                        .progress
                        .intervals
                        .entry(slot.proc)
                        .or_insert((report.grants, None))
                        .1 = Some(report.grants);
                    slot.harvested = true;
                }
                GatePhase::Crashed => {
                    report.progress.crashed.push(slot.proc);
                    slot.harvested = true;
                }
                _ => {}
            }
        }

        // Collect the waiting set (slot order = ascending processor id).
        let mut slot_indices = Vec::new();
        let mut waiting: Vec<WaitingAt> = Vec::new();
        for (index, slot) in slots.iter().enumerate() {
            if let GatePhase::Waiting(point, state) = &slot.phase {
                slot_indices.push(index);
                waiting.push(WaitingAt {
                    proc: slot.proc,
                    point: *point,
                    state: state.clone(),
                });
            }
        }
        if waiting.is_empty() {
            break; // every participant finished or crashed
        }

        // In-flight cancellation reaches tasks parked at gates here: a
        // tripped token aborts the rest of the run like a Stop command.
        if cancel.is_cancelled() && !stopping {
            stopping = true;
        }
        if report.grants >= config.max_grants && !stopping {
            report.budget_exhausted = true;
            stopping = true;
        }
        let command = if stopping {
            GateCommand::Stop
        } else {
            // Consult the scheduler outside the lock: every live task is
            // parked, so nothing races the snapshot.
            drop(slots);
            let command = scheduler.pick(&GateObservation {
                participants: procs.len(),
                grants_made: report.grants,
                crash_budget_left,
                waiting: &waiting,
                progress: &report.progress,
            });
            slots = gate.slots.lock().expect(LOCK);
            command
        };

        match command {
            GateCommand::Stop => {
                report.stopped = true;
                stopping = true;
                for slot in slots.iter_mut() {
                    if matches!(slot.phase, GatePhase::Waiting(..)) {
                        doom(&gate, slot);
                    }
                }
            }
            GateCommand::Crash(victim)
                if crash_budget_left > 0 && waiting.iter().any(|entry| entry.proc == victim) =>
            {
                crash_budget_left -= 1;
                let pos = waiting
                    .iter()
                    .position(|entry| entry.proc == victim)
                    .expect("victim verified waiting above");
                doom(&gate, &mut slots[slot_indices[pos]]);
            }
            command => {
                // Illegal crashes degrade to the oldest waiting grant,
                // mirroring the scheduled runner's tolerant replay
                // semantics.
                let pick = match command {
                    GateCommand::Run(pick) => pick % waiting.len(),
                    _ => 0,
                };
                report.grants += 1;
                report
                    .progress
                    .intervals
                    .entry(waiting[pick].proc)
                    .or_insert((report.grants, None));
                let slot = &mut slots[slot_indices[pick]];
                let task = slot.parked.take().expect("a waiting slot holds its task");
                slot.phase = GatePhase::Running;
                drop(slots);
                executor.inject_gated(task);
            }
        }
    }

    report.faults = match gate.fault_totals.lock() {
        Ok(guard) => *guard,
        Err(poisoned) => *poisoned.into_inner(),
    };
    report
}

/// Doom one parked slot in place: merge its task's fault counters (matching
/// the scheduled runner, which merges on the crash-verdict exit path too),
/// drop the task, and record the crash.
fn doom(gate: &GateShared, slot: &mut GateSlot) {
    if let Some(task) = slot.parked.take() {
        gate.merge(&task.memory.stats());
    }
    slot.phase = GatePhase::Crashed;
}

/// Run one instance fully sequentialized on the executor — the gated FIFO
/// schedule, outcome-identical to `fle_sim::SimMemory::run_all` and to
/// [`crate::run_scheduled`] with a [`FifoScheduler`] — and return its
/// report. The deterministic face of the async backend, used by the
/// differential suite.
pub fn run_gated_fifo(
    executor: &Executor,
    registers: &Arc<SharedRegisters>,
    namespace: u64,
    seed: u64,
    participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
) -> ScheduledReport {
    let k = participants.len();
    run_gated(
        executor,
        registers,
        namespace,
        seed,
        participants,
        ScheduleConfig::for_participants(k),
        &mut FifoScheduler,
        None,
        &CancelToken::none(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::CrashSpec;
    use crate::sched::run_scheduled_faulty;
    use crate::{election_participants, renaming_participants};
    use std::collections::BTreeSet;

    fn small_executor(workers: usize) -> Executor {
        Executor::new(ExecutorConfig::new(workers).with_ops_per_poll(4))
    }

    #[test]
    fn free_instances_each_elect_one_winner_with_none_lost() {
        let executor = small_executor(3);
        let registers = Arc::new(SharedRegisters::new(8));
        let tickets: Vec<(u64, InFlight)> = (0..100u64)
            .map(|key| {
                let ticket = executor.submit(
                    &registers,
                    key,
                    key,
                    election_participants(4),
                    &FaultPlan::default(),
                    CancelToken::none(),
                );
                (key, ticket)
            })
            .collect();
        let mut seen = BTreeSet::new();
        for (key, ticket) in tickets {
            match ticket.wait() {
                ExecResult::Completed(report) => {
                    assert_eq!(report.outcomes.len(), 4, "instance {key}");
                    assert_eq!(report.winners().len(), 1, "instance {key}");
                    assert!(seen.insert(key), "duplicate resolution for {key}");
                }
                other => panic!("instance {key}: unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), 100, "no lost results");
        let stats = executor.stats();
        assert_eq!(stats.in_flight, 0);
        assert!(stats.peak_in_flight >= 1);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn gated_fifo_matches_the_thread_per_participant_scheduled_runner() {
        let executor = small_executor(2);
        for seed in 0..4u64 {
            let exec_registers = Arc::new(SharedRegisters::new(2));
            let exec_report = run_gated_fifo(
                &executor,
                &exec_registers,
                0,
                seed,
                election_participants(4),
            );
            let sched_registers = Arc::new(SharedRegisters::new(2));
            let sched_report = crate::run_scheduled(
                &sched_registers,
                0,
                seed,
                election_participants(4),
                ScheduleConfig::for_participants(4),
                &mut FifoScheduler,
            );
            assert_eq!(
                exec_report.progress.outcomes, sched_report.progress.outcomes,
                "seed {seed}"
            );
            assert_eq!(
                exec_report.progress.intervals, sched_report.progress.intervals,
                "seed {seed}"
            );
            assert_eq!(exec_report.grants, sched_report.grants, "seed {seed}");
            assert_eq!(exec_report.stopped, sched_report.stopped);
        }
    }

    /// Round-robin over waiting participants, for interleaving equivalence.
    struct RoundRobin {
        next: usize,
    }

    impl GateScheduler for RoundRobin {
        fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
            let pick = self.next % obs.waiting.len();
            self.next = self.next.wrapping_add(1);
            GateCommand::Run(pick)
        }
    }

    #[test]
    fn gated_round_robin_matches_the_scheduled_runner_under_faults() {
        let executor = small_executor(4);
        let plan = FaultPlan::new(41)
            .with_collect_failures(400, 3)
            .with_crash(CrashSpec::lose_all(40));
        let exec_registers = Arc::new(SharedRegisters::new(2));
        let exec_report = run_gated(
            &executor,
            &exec_registers,
            0,
            5,
            election_participants(4),
            ScheduleConfig::for_participants(4),
            &mut RoundRobin { next: 0 },
            Some(plan),
            &CancelToken::none(),
        );
        let sched_registers = Arc::new(SharedRegisters::new(2));
        let sched_report = run_scheduled_faulty(
            &sched_registers,
            0,
            5,
            election_participants(4),
            ScheduleConfig::for_participants(4),
            &mut RoundRobin { next: 0 },
            Some(plan),
        );
        assert_eq!(
            exec_report.progress.outcomes,
            sched_report.progress.outcomes
        );
        assert_eq!(
            exec_report.progress.intervals,
            sched_report.progress.intervals
        );
        assert_eq!(exec_report.progress.crashed, sched_report.progress.crashed);
        assert_eq!(exec_report.grants, sched_report.grants);
        assert_eq!(exec_report.faults, sched_report.faults);
    }

    #[test]
    fn gated_runs_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let executor = small_executor(workers);
            let registers = Arc::new(SharedRegisters::new(3));
            run_gated(
                &executor,
                &registers,
                0,
                9,
                renaming_participants(5, 5),
                ScheduleConfig::for_participants(5),
                &mut RoundRobin { next: 0 },
                None,
                &CancelToken::none(),
            )
        };
        let lone = run(1);
        let pooled = run(4);
        assert_eq!(lone.progress.outcomes, pooled.progress.outcomes);
        assert_eq!(lone.progress.intervals, pooled.progress.intervals);
        assert_eq!(lone.progress.crashed, pooled.progress.crashed);
        assert_eq!(lone.grants, pooled.grants);
        let names: BTreeSet<usize> = lone.progress.names().values().copied().collect();
        assert_eq!(names.len(), 5, "renaming still assigns unique names");
    }

    /// Trips a cancel token once enough grants have happened, then keeps
    /// granting FIFO — the control loop must notice the token at its next
    /// quiescent point, while every live task is parked at a gate.
    struct TripAfter {
        cancel: CancelToken,
        grants: u64,
    }

    impl GateScheduler for TripAfter {
        fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
            if obs.grants_made >= self.grants {
                self.cancel.cancel();
            }
            GateCommand::Run(0)
        }
    }

    #[test]
    fn cancel_expiry_while_parked_at_a_gate_aborts_the_run() {
        let executor = small_executor(2);
        let registers = Arc::new(SharedRegisters::new(2));
        let cancel = CancelToken::new();
        let mut scheduler = TripAfter {
            cancel: cancel.clone(),
            grants: 5,
        };
        let report = run_gated(
            &executor,
            &registers,
            0,
            3,
            election_participants(4),
            ScheduleConfig::for_participants(4),
            &mut scheduler,
            None,
            &cancel,
        );
        assert!(report.stopped, "a tripped token aborts like a Stop");
        assert!(!report.budget_exhausted);
        assert_eq!(report.grants, 6, "one grant lands after the trip");
        assert!(
            !report.progress.crashed.is_empty(),
            "parked tasks are doomed on cancellation"
        );
        assert_eq!(
            report.progress.outcomes.len() + report.progress.crashed.len(),
            4,
            "every participant is accounted for"
        );
    }

    #[test]
    fn free_cancel_token_resolves_cancelled() {
        let executor = small_executor(2);
        let registers = Arc::new(SharedRegisters::new(1));
        let cancel = CancelToken::new();
        cancel.cancel();
        let ticket = executor.submit(
            &registers,
            0,
            1,
            election_participants(4),
            &FaultPlan::default(),
            cancel,
        );
        assert!(matches!(ticket.wait(), ExecResult::Cancelled));
        assert_eq!(executor.stats().in_flight, 0);
    }

    #[test]
    fn shutdown_with_queued_tasks_resolves_every_ticket() {
        // One worker, many instances: most tasks are still queued (or parked
        // between polls) when shutdown lands. Every ticket must resolve —
        // completed or cancelled, never hung or lost.
        let executor = small_executor(1);
        let registers = Arc::new(SharedRegisters::new(4));
        let tickets: Vec<InFlight> = (0..50u64)
            .map(|key| {
                executor.submit(
                    &registers,
                    key,
                    key,
                    election_participants(4),
                    &FaultPlan::default(),
                    CancelToken::none(),
                )
            })
            .collect();
        executor.shutdown();
        let (mut completed, mut cancelled) = (0usize, 0usize);
        for ticket in tickets {
            match ticket.wait() {
                ExecResult::Completed(report) => {
                    assert_eq!(report.winners().len(), 1);
                    completed += 1;
                }
                ExecResult::Cancelled => cancelled += 1,
                ExecResult::Panicked(_) => panic!("nothing panics in this test"),
            }
        }
        assert_eq!(completed + cancelled, 50, "no ticket is lost");
        assert!(cancelled > 0, "shutdown caught work still in the queue");
        // Shutdown is idempotent and submissions after it resolve promptly.
        executor.shutdown();
        let late = executor.submit(
            &registers,
            99,
            0,
            election_participants(2),
            &FaultPlan::default(),
            CancelToken::none(),
        );
        assert!(matches!(late.wait(), ExecResult::Cancelled));
    }

    #[test]
    fn a_paused_pool_stages_the_whole_batch_before_running_any_of_it() {
        // Nothing runs until release(), so the in-flight high-water mark is
        // exactly the staged batch — the deterministic density measurement
        // the bench storm relies on. After release everything drains clean.
        let executor = Executor::new(ExecutorConfig::new(2).with_start_paused());
        let registers = Arc::new(SharedRegisters::new(4));
        let tickets: Vec<InFlight> = (0..40u64)
            .map(|key| {
                executor.submit(
                    &registers,
                    key,
                    key,
                    election_participants(3),
                    &FaultPlan::default(),
                    CancelToken::none(),
                )
            })
            .collect();
        let staged = executor.stats();
        assert_eq!(staged.in_flight, 40, "the paused pool holds everything");
        assert_eq!(staged.peak_in_flight, 40);
        assert!(
            tickets.iter().all(|t| t.try_wait().is_none()),
            "no instance may resolve before release"
        );
        executor.release();
        executor.release(); // idempotent
        for (key, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait() {
                ExecResult::Completed(report) => {
                    assert_eq!(report.winners().len(), 1, "namespace {key}")
                }
                other => panic!("namespace {key}: unexpected {other:?}"),
            }
        }
        assert_eq!(executor.stats().in_flight, 0);
    }

    #[test]
    fn shutdown_resolves_tickets_staged_on_a_paused_pool() {
        // Shutdown must not deadlock against a pause: queued tasks drain to
        // Cancelled and the workers exit even though release() never ran.
        let executor = Executor::new(ExecutorConfig::new(2).with_start_paused());
        let registers = Arc::new(SharedRegisters::new(4));
        let ticket = executor.submit(
            &registers,
            0,
            0,
            election_participants(3),
            &FaultPlan::default(),
            CancelToken::none(),
        );
        executor.shutdown();
        assert!(matches!(ticket.wait(), ExecResult::Cancelled));
        assert_eq!(executor.stats().in_flight, 0);
    }

    #[test]
    fn a_panicking_task_poisons_only_its_ticket() {
        // Processor 0 of namespace 13 panics at its second operation; every
        // other instance on the same pool completes, and the workers survive
        // to serve submissions made afterwards.
        let executor = small_executor(2);
        let registers = Arc::new(SharedRegisters::new(4));
        let plan =
            FaultPlan::new(5).with_crash(CrashSpec::panic_proc(ProcId(0), 2).only_namespace(13));
        let poisoned = executor.submit(
            &registers,
            13,
            7,
            election_participants(4),
            &plan,
            CancelToken::none(),
        );
        let clean: Vec<InFlight> = (0..5u64)
            .map(|key| {
                executor.submit(
                    &registers,
                    key,
                    key,
                    election_participants(4),
                    &plan,
                    CancelToken::none(),
                )
            })
            .collect();
        assert!(matches!(poisoned.wait(), ExecResult::Panicked(_)));
        for (key, ticket) in clean.into_iter().enumerate() {
            match ticket.wait() {
                ExecResult::Completed(report) => {
                    assert_eq!(report.winners().len(), 1, "instance {key}")
                }
                other => panic!("instance {key}: unexpected {other:?}"),
            }
        }
        let after = executor.submit(
            &registers,
            50,
            1,
            election_participants(4),
            &plan,
            CancelToken::none(),
        );
        assert!(
            matches!(after.wait(), ExecResult::Completed(_)),
            "workers outlive a panicking task"
        );
        assert_eq!(executor.stats().in_flight, 0);
    }

    #[test]
    fn free_fault_counters_surface_only_when_a_plan_is_live() {
        let executor = small_executor(2);
        let registers = Arc::new(SharedRegisters::new(2));
        let clean = executor
            .submit(
                &registers,
                0,
                7,
                election_participants(4),
                &FaultPlan::default(),
                CancelToken::none(),
            )
            .wait();
        match clean {
            ExecResult::Completed(report) => assert_eq!(
                report.faults,
                FaultStats::default(),
                "a no-op plan reports no fault counters"
            ),
            other => panic!("unexpected {other:?}"),
        }
        let plan = FaultPlan::new(3).with_collect_failures(200, 2);
        let faulty = executor
            .submit(
                &registers,
                1,
                7,
                election_participants(4),
                &plan,
                CancelToken::none(),
            )
            .wait();
        match faulty {
            ExecResult::Completed(report) => {
                assert_eq!(report.winners().len(), 1);
                assert!(report.faults.ops > 0, "a live plan surfaces its counters");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_participant_lists_complete_immediately() {
        let executor = small_executor(1);
        let registers = Arc::new(SharedRegisters::new(1));
        let ticket = executor.submit(
            &registers,
            0,
            0,
            Vec::new(),
            &FaultPlan::default(),
            CancelToken::none(),
        );
        match ticket.wait() {
            ExecResult::Completed(report) => assert!(report.outcomes.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(executor.stats().in_flight, 0);
    }
}
