//! Head-to-head: the paper's O(log* k) election against the classic
//! Θ(log n) tournament-tree test-and-set of Afek et al. (AGTV92).
//!
//! Run with `cargo run --release --example tournament_vs_poisonpill`.

use fast_leader_election::prelude::*;

fn tournament_run(n: usize, seed: u64) -> ExecutionReport {
    let config = TournamentConfig::new(n);
    let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(TournamentTas::new(ProcId(i), config)));
    }
    sim.run(&mut RandomAdversary::with_seed(seed))
        .expect("the tournament terminates")
}

fn poisonpill_run(n: usize, seed: u64) -> ExecutionReport {
    let setup = ElectionSetup::all_participate(n).with_seed(seed);
    run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
        .expect("the election terminates")
}

fn main() {
    let trials = 5u64;
    println!("maximum communicate calls by any processor (average over {trials} trials)\n");
    println!(
        "{:>6}  {:>18}  {:>18}  {:>9}  {:>9}",
        "n", "PoisonPill electn", "tournament tree", "log*(n)", "log2(n)"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let ours: u64 = (0..trials)
            .map(|s| poisonpill_run(n, s).max_communicate_calls())
            .sum();
        let tournament: u64 = (0..trials)
            .map(|s| tournament_run(n, s).max_communicate_calls())
            .sum();
        println!(
            "{:>6}  {:>18.1}  {:>18.1}  {:>9}  {:>9.1}",
            n,
            ours as f64 / trials as f64,
            tournament as f64 / trials as f64,
            log_star(n as u64),
            (n as f64).log2()
        );
    }
    println!(
        "\nThe tournament column grows with log2(n) (one match per tree level);\n\
         the PoisonPill column stays essentially flat, as Theorem A.5 predicts."
    );
}
