//! Hunt for schedules that violate the paper's guarantees, then shrink a
//! real counterexample to its minimal replayable form.
//!
//! Part 1 turns the explorer loose on the healthy protocols: every attack
//! strategy in the library (adaptive front-runner crashes, targeted
//! starvation, split-brain orderings, weighted random walks) across a grid
//! of seeds, with the safety oracles checked after every event. The paper
//! holds: nothing fires.
//!
//! Part 2 demonstrates what a hit looks like. A sabotaged leader election
//! (every `Round` write dropped — the "skip the write" mutation) is caught
//! by the unique-leader oracle; the recorded decision trace is then
//! delta-debugged down to a minimal counterexample and printed in its
//! serialized form, from which `ReplayAdversary` can reproduce the double
//! election deterministically.
//!
//! Run with `cargo run --release --example schedule_hunt`.

use fast_leader_election::explore::sabotage::SabotagedElectionScenario;
use fast_leader_election::explore::{replay, standard_scenarios};
use fast_leader_election::prelude::*;

fn main() {
    println!("== part 1: the healthy protocols survive the attack library ==");
    for scenario in standard_scenarios(&[8]) {
        let report = Explorer::new(scenario.as_ref())
            .with_sim_seeds(0..6)
            .with_strategy_seeds(0..2)
            .hunt();
        println!(
            "  {:<28} {:>3} episodes, {:>3} clean, {} violations",
            scenario.name(),
            report.episodes,
            report.clean,
            report.violations.len()
        );
        assert!(report.violations.is_empty(), "the paper's invariants hold");
    }

    println!();
    println!("== part 2: a sabotaged election is caught and shrunk ==");
    let mutant = SabotagedElectionScenario { n: 8, k: 8 };
    let hunt = Explorer::new(&mutant).with_sim_seeds(0..8).hunt();
    let found = hunt
        .first_violation()
        .expect("dropping the Round writes lets two processors win");
    println!("  found: {found}");

    let minimal = shrink(&mutant, found, 400);
    println!(
        "  shrunk: {} -> {} decisions ({} replays, ratio {:.0}%)",
        minimal.original_len,
        minimal.minimized.len(),
        minimal.replays,
        minimal.ratio() * 100.0
    );
    println!("  replay text: {:?}", minimal.minimized.to_compact_string());

    let (confirmed, _) = replay(&mutant, found.plan.sim_seed, &minimal.minimized);
    let confirmed = confirmed.expect("the minimized trace still reproduces the violation");
    println!("  replayed: {confirmed}");
}
