//! Quickstart: elect a leader among 32 simulated processors and print the
//! complexity figures the paper reasons about.
//!
//! Run with `cargo run --example quickstart`.

use fast_leader_election::prelude::*;

fn main() {
    let n = 32;
    let setup = ElectionSetup::all_participate(n).with_seed(2024);
    let mut adversary = RandomAdversary::with_seed(7);

    let report = run_leader_election(&setup, &mut adversary).expect("the election terminates");

    let winner = report.winners()[0];
    println!("system size                 : {n} processors");
    println!("participants                : {n}");
    println!("elected leader              : {winner}");
    println!(
        "time (max communicate calls): {}   [paper: O(log* k), log*({n}) = {}]",
        report.max_communicate_calls(),
        log_star(n as u64)
    );
    println!(
        "message complexity          : {}   [paper: O(kn) = O({})]",
        report.total_messages(),
        n * n
    );
    println!(
        "losers                      : {}",
        report.with_outcome(Outcome::Lose).len()
    );

    assert!(checks::unique_winner(&report));
    assert!(checks::linearizable_test_and_set(&report));
    println!("\ncorrectness: unique winner OK, linearizable OK");
}
