//! Tight renaming as a service: n clients arrive with large, arbitrary
//! identifiers and leave with unique names 1..=n (Section 4 of the paper).
//!
//! Run with `cargo run --example renaming_service`.

use fast_leader_election::prelude::*;

fn main() {
    let n = 12;
    let setup = RenamingSetup::all_participate(n).with_seed(99);
    let mut adversary = RandomAdversary::with_seed(13);

    let report = run_renaming(&setup, &mut adversary).expect("renaming terminates");
    assert!(checks::valid_tight_renaming(&report, n, n));

    println!("tight renaming of {n} clients into the namespace 1..={n}\n");
    println!("{:>10}  {:>6}", "processor", "name");
    for (proc, name) in report.names() {
        println!("{proc:>10}  {name:>6}");
    }
    println!(
        "\ntime (max communicate calls): {}   [paper: O(log^2 n) ≈ {:.1}]",
        report.max_communicate_calls(),
        (n as f64).log2().powi(2)
    );
    println!(
        "message complexity          : {}   [paper: O(n^2) = {}]",
        report.total_messages(),
        n * n
    );
}
