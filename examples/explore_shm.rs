//! Hunt the **concurrent backend** — real participant threads on a shared
//! register bank — with the same strategies, oracles and shrinker that sweep
//! the simulator. The walkthrough from ARCHITECTURE.md, runnable:
//!
//! 1. **Pick a strategy.** Every `StrategySpec` works unchanged: on this
//!    backend a `Schedule(i)` decision grants the i-th participant thread
//!    parked at its schedule gate instead of the i-th simulator event.
//! 2. **Hunt a sabotaged protocol.** A leader election whose `Round` writes
//!    are dropped ("skip the write") runs on `SharedRegisters` — the
//!    production concurrency model — until the unique-leader oracle catches
//!    two threads both returning `WIN`.
//! 3. **Shrink and print the trace.** The recorded decision trace is
//!    delta-debugged on the same backend and printed in the compact
//!    `s<i>`/`c<p>` codec; `replay_shm` re-executes the threads from that
//!    text alone and reproduces the violation deterministically.
//!
//! Run with `cargo run --release --example explore_shm`.

use fast_leader_election::explore::sabotage::SabotagedElectionScenario;
use fast_leader_election::explore::{
    replay_shm, shrink_shm, standard_scenarios, ExploreBackend, ShmConfig,
};
use fast_leader_election::prelude::*;

fn main() {
    let config = ShmConfig::default();
    let backend = ExploreBackend::Concurrent(config);

    println!("== part 1: the healthy protocols survive the attack library on real threads ==");
    for scenario in standard_scenarios(&[8]) {
        let report = Explorer::new(scenario.as_ref())
            .with_backend(backend)
            .with_sim_seeds(0..4)
            .with_strategy_seeds(0..2)
            .hunt();
        println!(
            "  {:<28} {:>3} episodes, {:>3} clean, {} violations",
            scenario.name(),
            report.episodes,
            report.clean,
            report.violations.len()
        );
        assert!(report.violations.is_empty(), "the paper's invariants hold");
    }

    println!();
    println!("== part 2: a sabotaged election is caught on SharedRegisters ==");
    let mutant = SabotagedElectionScenario { n: 4, k: 4 };
    let hunt = Explorer::new(&mutant)
        .with_backend(backend)
        .with_sim_seeds(0..8)
        .hunt();
    let found = hunt
        .first_violation()
        .expect("dropping the Round writes lets two threads win");
    println!("  found: {found}");

    println!();
    println!("== part 3: shrink on the same backend, replay from text ==");
    let minimal = shrink_shm(&mutant, found, 300, &config);
    println!(
        "  shrunk: {} -> {} decisions ({} replays, ratio {:.0}%)",
        minimal.original_len,
        minimal.minimized.len(),
        minimal.replays,
        minimal.ratio() * 100.0
    );
    let text = minimal.minimized.to_compact_string();
    println!("  replay text: {text:?}");

    // A teammate with only the CI log would do exactly this:
    let from_text = DecisionTrace::parse(&text).expect("the codec round-trips");
    let (confirmed, _) = replay_shm(&mutant, found.plan.sim_seed, &from_text, &config);
    let confirmed = confirmed.expect("the minimized trace still reproduces the violation");
    println!("  replayed on fresh threads: {confirmed}");
}
