//! The heart of the paper in one table: how many processors survive a single
//! sifting phase under the strong adversary?
//!
//! The plain PoisonPill (Figure 1, bias 1/√n) cannot beat Ω(√n) survivors —
//! the sequential schedule of Section 3.2 forces that many. The heterogeneous
//! PoisonPill (Figure 2) keeps the expected survivor count at O(log² n) under
//! every schedule, which is what makes the O(log* n) election possible.
//!
//! Run with `cargo run --release --example adversarial_sifting`.

use fast_leader_election::prelude::*;

fn build_adversary(kind: &str, seed: u64) -> Box<dyn Adversary> {
    match kind {
        "random" => Box::new(RandomAdversary::with_seed(seed)),
        "sequential" => Box::new(SequentialAdversary::new()),
        "coin-aware" => Box::new(CoinAwareAdversary::with_seed(seed)),
        other => panic!("unknown adversary kind {other}"),
    }
}

fn average_survivors(n: usize, trials: u64, heterogeneous: bool, kind: &str) -> f64 {
    let total: usize = (0..trials)
        .map(|seed| {
            let setup = SiftSetup::all_participate(n).with_seed(seed);
            let mut adversary = build_adversary(kind, seed);
            let report = if heterogeneous {
                run_heterogeneous_poison_pill(&setup, adversary.as_mut())
            } else {
                run_poison_pill(&setup, 1.0 / (n as f64).sqrt(), adversary.as_mut())
            }
            .expect("the sifting phase terminates");
            assert!(checks::at_least_one_survivor(&report), "Claim 3.1");
            report.survivors().len()
        })
        .sum();
    total as f64 / trials as f64
}

fn main() {
    let trials = 10;
    println!("survivors of one sifting phase (average over {trials} trials)\n");
    println!(
        "{:>6}  {:>12}  {:>18}  {:>18}  {:>8}  {:>10}",
        "n", "adversary", "fixed-bias sift", "heterogeneous", "sqrt(n)", "log2(n)^2"
    );
    for n in [16usize, 64, 144, 256] {
        for kind in ["random", "sequential", "coin-aware"] {
            let plain = average_survivors(n, trials, false, kind);
            let het = average_survivors(n, trials, true, kind);
            println!(
                "{:>6}  {:>12}  {:>18.2}  {:>18.2}  {:>8.2}  {:>10.2}",
                n,
                kind,
                plain,
                het,
                (n as f64).sqrt(),
                (n as f64).log2().powi(2)
            );
        }
    }
    println!(
        "\nThe fixed-bias sift tracks sqrt(n) under the sequential and coin-aware schedules,\n\
         while the heterogeneous sift stays flat - exactly the separation the paper exploits."
    );
}
