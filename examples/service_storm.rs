//! A storm of concurrent election instances through the sharded service.
//!
//! Thousands of independent leader elections are submitted to an
//! [`ElectionService`] running on either in-process backend: every
//! instance's registers live (namespaced) in one shared, sharded register
//! bank, and finished instances are retired epoch by epoch so the bank
//! stays small no matter how many instances have been served. On the
//! `concurrent` backend every participant is a real OS thread (spawned and
//! joined per instance); on the `async` backend the participants are
//! cooperative tasks multiplexed over one fixed executor pool, so the same
//! storm runs without a single per-participant thread.
//!
//! Run with `cargo run --release --example service_storm` (concurrent) or
//! `cargo run --release --example service_storm -- --backend async`.

use fast_leader_election::prelude::*;
use std::time::Instant;

fn parse_backend() -> BackendKind {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|arg| arg == "--backend") {
        None => BackendKind::Concurrent,
        Some(index) => match args.get(index + 1).map(String::as_str) {
            Some("concurrent") => BackendKind::Concurrent,
            Some("async") => BackendKind::Async,
            other => {
                eprintln!(
                    "usage: service_storm [--backend {{concurrent,async}}] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let backend = parse_backend();
    // Cap the shard count so every shard completes several epochs over the
    // storm (the retirement assertions below rely on the first-submitted
    // instance's shard closing at least one epoch after it finishes).
    let shards = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(8);
    let instances = 2000u64;
    let n = 4;

    let service = ElectionService::new(
        ServiceConfig::new(shards, backend)
            .with_epoch_size(64)
            .with_retained_epochs(1),
    );

    println!(
        "submitting {instances} elections of {n} processors across {shards} shards \
         on the {} backend ...",
        backend.label()
    );
    let start = Instant::now();
    let tickets: Vec<Ticket> = (0..instances)
        .map(|key| {
            service
                .submit(InstanceSpec::election(key, n))
                .expect("fresh keys are always accepted")
        })
        .collect();

    let mut slowest_micros = 0u64;
    for ticket in tickets {
        let result = ticket.wait().expect("every instance completes");
        assert!(
            result.winner().is_some(),
            "instance {} must elect exactly one winner",
            result.key
        );
        slowest_micros = slowest_micros.max(result.latency.as_micros() as u64);
    }
    let elapsed = start.elapsed();

    // Finished instances are queryable until their epoch retires...
    match service.status(instances - 1) {
        InstanceStatus::Done { winner } => {
            println!("last instance won by {winner:?} (still within the retention window)");
        }
        other => println!("last instance already retired: {other:?}"),
    }
    // ...while long-retired instances have left both the status table and
    // the register bank.
    assert_eq!(service.status(0), InstanceStatus::Unknown);

    let live = service.registers().live_namespaces();
    let (stats, metrics) = service.shutdown_with_metrics();
    println!(
        "served {} instances in {:.2?} ({:.0} instances/s), worst latency {slowest_micros} us",
        stats.completed,
        elapsed,
        stats.completed as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "epoch retirement kept the register bank at {live} live namespaces \
         ({} retired across {} closed epochs)",
        stats.retired, stats.epochs_closed,
    );

    // The always-on per-shard recorders say *where* the time went — on
    // either backend: which shard ran slowest, whose queue got deepest, and
    // whether instances spent their latency waiting for a worker or
    // actually electing.
    let metrics = metrics.expect("metrics are on by default");
    stats
        .check_metrics(&metrics)
        .expect("per-shard metrics must agree with the aggregate stats");
    println!("\nper-shard attribution ({} backend):", backend.label());
    print!("{}", metrics.attribution_report());
}
