//! A storm of concurrent election instances through the sharded service.
//!
//! Thousands of independent leader elections are submitted to an
//! [`ElectionService`] running on the in-process concurrent backend: every
//! instance's registers live (namespaced) in one shared, sharded register
//! bank, every participant is a real thread, and finished instances are
//! retired epoch by epoch so the bank stays small no matter how many
//! instances have been served.
//!
//! Run with `cargo run --release --example service_storm`.

use fast_leader_election::prelude::*;
use std::time::Instant;

fn main() {
    // Cap the shard count so every shard completes several epochs over the
    // storm (the retirement assertions below rely on the first-submitted
    // instance's shard closing at least one epoch after it finishes).
    let shards = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(8);
    let instances = 2000u64;
    let n = 4;

    let service = ElectionService::new(
        ServiceConfig::new(shards, BackendKind::Concurrent)
            .with_epoch_size(64)
            .with_retained_epochs(1),
    );

    println!("submitting {instances} elections of {n} processors across {shards} shards ...");
    let start = Instant::now();
    let tickets: Vec<Ticket> = (0..instances)
        .map(|key| {
            service
                .submit(InstanceSpec::election(key, n))
                .expect("fresh keys are always accepted")
        })
        .collect();

    let mut slowest_micros = 0u64;
    for ticket in tickets {
        let result = ticket.wait().expect("every instance completes");
        assert!(
            result.winner().is_some(),
            "instance {} must elect exactly one winner",
            result.key
        );
        slowest_micros = slowest_micros.max(result.latency.as_micros() as u64);
    }
    let elapsed = start.elapsed();

    // Finished instances are queryable until their epoch retires...
    match service.status(instances - 1) {
        InstanceStatus::Done { winner } => {
            println!("last instance won by {winner:?} (still within the retention window)");
        }
        other => println!("last instance already retired: {other:?}"),
    }
    // ...while long-retired instances have left both the status table and
    // the register bank.
    assert_eq!(service.status(0), InstanceStatus::Unknown);

    let live = service.registers().live_namespaces();
    let (stats, metrics) = service.shutdown_with_metrics();
    println!(
        "served {} instances in {:.2?} ({:.0} instances/s), worst latency {slowest_micros} us",
        stats.completed,
        elapsed,
        stats.completed as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "epoch retirement kept the register bank at {live} live namespaces \
         ({} retired across {} closed epochs)",
        stats.retired, stats.epochs_closed,
    );

    // The always-on per-shard recorders say *where* the time went: which
    // shard ran slowest, whose queue got deepest, and whether instances
    // spent their latency waiting for a worker or actually electing.
    let metrics = metrics.expect("metrics are on by default");
    stats
        .check_metrics(&metrics)
        .expect("per-shard metrics must agree with the aggregate stats");
    println!("\nper-shard attribution:");
    print!("{}", metrics.attribution_report());
}
