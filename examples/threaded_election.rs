//! The same leader-election protocol, but on real OS threads: one thread per
//! processor, crossbeam channels as the network, and random per-message
//! delays as asynchrony.
//!
//! Run with `cargo run --example threaded_election`.

use fast_leader_election::prelude::*;

fn main() {
    let n = 8;
    let config = RuntimeConfig::new(n)
        .with_seed(5)
        .with_max_delay_micros(200);

    let report = ThreadedRuntime::new(config)
        .run(election_participants(n))
        .expect("the threaded election completes");

    let winners = report.winners();
    println!("threaded leader election over {n} OS threads");
    println!("winner                      : {}", winners[0]);
    println!(
        "time (max communicate calls): {}",
        report.max_communicate_calls()
    );
    println!("total messages              : {}", report.total_messages());
    assert_eq!(winners.len(), 1, "exactly one thread may win");

    // The fault-tolerance story also holds on threads: with an unresponsive
    // minority the election still terminates.
    let config = RuntimeConfig::new(5)
        .with_seed(6)
        .with_unresponsive([ProcId(4)]);
    let report = ThreadedRuntime::new(config)
        .run(election_participants(4))
        .expect("completes despite an unresponsive replica");
    println!(
        "\nwith 1 of 5 replicas unresponsive the election still elects {}",
        report.winners()[0]
    );
}
