//! # fast-leader-election
//!
//! A from-scratch reproduction of **“How to Elect a Leader Faster than a
//! Tournament”** (Dan Alistarh, Rati Gelashvili, Adrian Vladu; PODC 2015):
//! randomized leader election (test-and-set) in the asynchronous
//! message-passing model against a **strong adaptive adversary** in expected
//! `O(log* k)` time and `O(kn)` messages, plus the message-optimal
//! `O(n²)`-message, `O(log² n)`-time tight-renaming algorithm built on top of
//! it.
//!
//! The crate is an umbrella over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`model`] (`fle-model`) | protocol state-machine interface, the `SharedMemory` backend contract, register values, wire messages, complexity metrics |
//! | [`sim`] (`fle-sim`) | deterministic discrete-event simulator: quorum `communicate`, adaptive adversaries, crash injection; sequential `SimMemory` adapter |
//! | [`runtime`] (`fle-runtime`) | real-thread backends: message passing over crossbeam channels, in-process concurrent `SharedRegisters`, and the schedule-controlled runner (`run_scheduled`) |
//! | [`core`] (`fle-core`) | PoisonPill, Heterogeneous PoisonPill, doorway, pre-round, the full election, renaming |
//! | [`baselines`] (`fle-baselines`) | tournament-tree test-and-set (AGTV92), random-order renaming (AAG+10) |
//! | [`service`] (`fle-service`) | sharded multi-instance election/renaming service over the pluggable backends |
//! | [`explore`] (`fle-explore`) | adversarial schedule exploration over both the simulator and the concurrent backend: attack strategies, safety oracles, counterexample shrinking |
//! | [`analysis`] (`fle-analysis`) | statistics, `log*`/`log²`/`√n` reference curves, table rendering |
//!
//! # Quickstart
//!
//! Elect a leader among 16 simulated processors under a fair scheduler:
//!
//! ```
//! use fast_leader_election::prelude::*;
//!
//! let setup = ElectionSetup::all_participate(16).with_seed(42);
//! let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(7))
//!     .expect("the election terminates");
//! assert_eq!(report.winners().len(), 1);
//! println!(
//!     "leader = {:?}, time = {} communicate calls, messages = {}",
//!     report.winners()[0],
//!     report.max_communicate_calls(),
//!     report.total_messages()
//! );
//! ```
//!
//! Or against the strong coin-inspecting adversary with crash injection:
//!
//! ```
//! use fast_leader_election::prelude::*;
//!
//! let setup = ElectionSetup::all_participate(9).with_seed(3);
//! let plan = CrashPlan::none().and_then(100, ProcId(7)).and_then(200, ProcId(8));
//! let mut adversary = CrashingAdversary::new(CoinAwareAdversary::with_seed(1), plan);
//! let report = run_leader_election(&setup, &mut adversary).unwrap();
//! assert!(report.winners().len() <= 1);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment drivers that regenerate every table in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fle_analysis as analysis;
pub use fle_baselines as baselines;
pub use fle_core as core;
pub use fle_explore as explore;
pub use fle_model as model;
pub use fle_runtime as runtime;
pub use fle_service as service;
pub use fle_sim as sim;

/// The most commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use fle_analysis::{log_star, Summary, Table};
    pub use fle_baselines::{RandomOrderRenaming, TournamentConfig, TournamentTas};
    pub use fle_core::checks;
    pub use fle_core::harness::{
        run_heterogeneous_poison_pill, run_leader_election, run_poison_pill, run_renaming,
        ElectionSetup, RenamingSetup, SiftSetup,
    };
    pub use fle_core::{
        Doorway, ElectionConfig, HeterogeneousPoisonPill, LeaderElection, PoisonPill, PreRound,
        Renaming, RenamingConfig,
    };
    pub use fle_explore::{
        replay_shm, shrink, shrink_shm, ExploreBackend, Explorer, Oracle, Scenario, ShmConfig,
        StrategySpec, Violation,
    };
    pub use fle_model::{
        drive, drive_cancellable, Action, CancelToken, ElectionContext, LocalStateView, Outcome,
        ProcId, Protocol, Response, SharedMemory,
    };
    pub use fle_runtime::{
        election_participants, renaming_participants, run_concurrent, run_concurrent_cancellable,
        run_concurrent_faulty, run_gated, run_gated_fifo, run_scheduled, run_scheduled_faulty,
        run_threaded_leader_election, run_threaded_renaming, CrashMode, CrashSpec, CrashVictim,
        ExecReport, ExecResult, Executor, ExecutorConfig, FaultPlan, FaultStats, FaultyMemory,
        FifoScheduler, GateScheduler, InFlight, RuntimeConfig, ScheduleConfig, SharedRegisters,
        ThreadedRuntime,
    };
    pub use fle_service::{
        BackendKind, ElectionService, FailStats, InstanceResult, InstanceSpec, InstanceStatus,
        OverloadPolicy, ServiceConfig, ServiceStats, SubmitError, Ticket, Workload,
    };
    pub use fle_sim::{
        Adversary, CoinAwareAdversary, CrashPlan, CrashingAdversary, DecisionTrace,
        ExecutionReport, ObliviousAdversary, RandomAdversary, RecordingAdversary, ReplayAdversary,
        SequentialAdversary, SimConfig, SimError, Simulator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let setup = ElectionSetup::all_participate(4).with_seed(1);
        let report = run_leader_election(&setup, &mut SequentialAdversary::new()).unwrap();
        assert!(checks::unique_winner(&report));
        assert!(checks::someone_won(&report));
        assert!(log_star(16) == 3);
    }
}
